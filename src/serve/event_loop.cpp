#include "serve/event_loop.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/deploy_protocol.h"
#include "serve/protocol.h"
#include "util/deadline.h"
#include "util/logging.h"
#include "util/strings.h"

#if defined(__linux__) && !defined(SASYNTH_EVENT_LOOP_FORCE_POLL)
#define SASYNTH_EVENT_LOOP_EPOLL 1
#include <sys/epoll.h>
#include <sys/eventfd.h>
#else
#define SASYNTH_EVENT_LOOP_EPOLL 0
#include <poll.h>
#endif

namespace sasynth {

namespace {

/// Same transient-accept classification as the blocking TcpListener path.
bool accept_errno_is_transient(int err) {
  return err == ECONNABORTED || err == EMFILE || err == ENFILE ||
         err == ENOBUFS || err == ENOMEM || err == EPROTO;
}

/// Loop-layer instruments (docs/OBSERVABILITY.md). The gauge is the live
/// open-connection count; the counters are monotonic accept/reject/wakeup
/// totals for rate math.
struct LoopMetrics {
  obs::Gauge& connections;
  obs::Counter& connections_total;
  obs::Counter& connections_rejected;
  obs::Counter& wakeups;
  obs::Counter& io_timeouts;

  static LoopMetrics& get() {
    static LoopMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new LoopMetrics{
          r.gauge("serve_connections"),
          r.counter("serve_connections_total"),
          r.counter("serve_connections_rejected_total"),
          r.counter("loop_wakeups_total"),
          r.counter("io_timeouts_total"),
      };
    }();
    return *m;
  }
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// One finished response on its way back to the loop thread.
struct Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t seq = 0;
  std::string response;
};

/// The cross-thread handoff: pool workers (and any thread a coalesced
/// completion lands on) push here and poke the wake fd; the loop swaps the
/// queue out under the lock. Held by shared_ptr so a completion that arrives
/// after the loop is gone (forced drain timeout) lands in a detached queue
/// instead of freed memory.
struct Waker {
  std::mutex mutex;
  std::vector<Completion> queue;
  int wake_fd = -1;  ///< eventfd, or the write end of the self-pipe

  void post(std::uint64_t conn_id, std::uint64_t seq, std::string response) {
    obs::ScopedSpan span("loop.wakeup", "serve");
    std::lock_guard<std::mutex> lock(mutex);
    queue.push_back(Completion{conn_id, seq, std::move(response)});
    wake_locked();
  }

  void wake() {
    std::lock_guard<std::mutex> lock(mutex);
    wake_locked();
  }

  void wake_locked() {
    static fault::Site& wakeup_site = fault::site(fault::kSiteLoopWakeup);
    LoopMetrics::get().wakeups.add(1);
    if (wakeup_site.fire() != fault::ErrorKind::kNone) {
      // A lost wakeup: the completion sits in the queue until the loop's
      // bounded wait tick (<= 250 ms) next looks — delayed, never dropped.
      fault::note_degraded();
      return;
    }
    if (wake_fd < 0) return;  // loop already torn down; queue is detached
#if SASYNTH_EVENT_LOOP_EPOLL
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof(one));
#else
    // EAGAIN (pipe full) is fine: a wakeup is already pending.
    [[maybe_unused]] const ssize_t n = ::write(wake_fd, "x", 1);
#endif
  }

  void detach() {
    std::lock_guard<std::mutex> lock(mutex);
    if (wake_fd >= 0) ::close(wake_fd);
    wake_fd = -1;
  }
};

/// Per-connection state machine, loop-thread-only. The read side mirrors
/// FdLineReader (line framing, trailing line at clean EOF, partial-line drop
/// on error/timeout); the write side mirrors serve()'s ordered writer (seq ->
/// ready map, strict in-order emission) plus write_all_fd's partial-write and
/// fault-site semantics.
struct Connection {
  std::uint64_t id = 0;
  int fd = -1;

  // Read side / framing.
  std::string inbuf;      ///< raw bytes, not yet framed into lines
  bool in_block = false;  ///< accumulating a request/deploy/shard block
  SynthServer::BlockKind kind = SynthServer::BlockKind::kSynth;
  std::string block;        ///< partial block text
  bool read_closed = false; ///< EOF/error/timeout/drain: input is over

  // Ordered responses.
  std::uint64_t next_seq = 0;   ///< seqs handed out to submissions/commands
  std::uint64_t next_emit = 0;  ///< next seq to append to outbuf
  std::uint64_t posted = 0;     ///< responses received (ready or emitted)
  std::map<std::uint64_t, std::string> ready;

  // Write side.
  std::string outbuf;

  // --io-timeout per direction, reset on progress (Deadline() = disarmed).
  Deadline read_deadline;
  Deadline write_deadline;

#if SASYNTH_EVENT_LOOP_EPOLL
  std::uint32_t registered_events = 0;
#endif

  bool flushed() const {
    return posted == next_seq && ready.empty() && outbuf.empty();
  }
};

}  // namespace

struct EventLoopServer::Impl {
  SynthServer& server;
  EventLoopOptions options;
  std::int64_t io_timeout_ms = 0;

  TcpListener listener;
  std::shared_ptr<Waker> waker = std::make_shared<Waker>();
  int wake_read_fd = -1;
#if SASYNTH_EVENT_LOOP_EPOLL
  int epoll_fd = -1;
#endif

  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns;
  std::uint64_t next_conn_id = 3;  ///< 1 = listener, 2 = wake fd
  static constexpr std::uint64_t kListenerId = 1;
  static constexpr std::uint64_t kWakeId = 2;

  std::atomic<bool> stop_requested{false};
  std::atomic<std::int64_t> open_count{0};
  bool draining = false;
  Deadline drain_deadline;

  Impl(SynthServer& s, EventLoopOptions o)
      : server(s), options(o), io_timeout_ms(s.options().io_timeout_ms) {}

  ~Impl() {
    for (auto& [id, conn] : conns) {
      if (conn->fd >= 0) ::close(conn->fd);
    }
    conns.clear();
    LoopMetrics::get().connections.set(0);
    if (wake_read_fd >= 0 && wake_read_fd != waker->wake_fd) {
      ::close(wake_read_fd);
    }
    waker->detach();
#if SASYNTH_EVENT_LOOP_EPOLL
    if (epoll_fd >= 0) ::close(epoll_fd);
#endif
  }

  // --- poller -----------------------------------------------------------

  bool start(std::string* error) {
    if (!listener.listen_on(options.port, error)) return false;
    set_nonblocking(listener.fd());
#if SASYNTH_EVENT_LOOP_EPOLL
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) {
      *error = std::string("epoll_create1: ") + std::strerror(errno);
      return false;
    }
    const int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (efd < 0) {
      *error = std::string("eventfd: ") + std::strerror(errno);
      return false;
    }
    // eventfd is one fd for both ends.
    wake_read_fd = efd;
    waker->wake_fd = efd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerId;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listener.fd(), &ev) < 0) {
      *error = std::string("epoll_ctl(listener): ") + std::strerror(errno);
      return false;
    }
    ev.data.u64 = kWakeId;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_read_fd, &ev) < 0) {
      *error = std::string("epoll_ctl(eventfd): ") + std::strerror(errno);
      return false;
    }
#else
    int pipe_fds[2];
    if (::pipe(pipe_fds) < 0) {
      *error = std::string("pipe: ") + std::strerror(errno);
      return false;
    }
    set_nonblocking(pipe_fds[0]);
    set_nonblocking(pipe_fds[1]);
    wake_read_fd = pipe_fds[0];
    waker->wake_fd = pipe_fds[1];
#endif
    return true;
  }

  std::uint32_t wanted_events(const Connection& c) const {
#if SASYNTH_EVENT_LOOP_EPOLL
    std::uint32_t want = 0;
    if (!c.read_closed) want |= EPOLLIN;
    if (!c.outbuf.empty()) want |= EPOLLOUT;
    return want;
#else
    std::uint32_t want = 0;
    if (!c.read_closed) want |= POLLIN;
    if (!c.outbuf.empty()) want |= POLLOUT;
    return want;
#endif
  }

  void update_events(Connection& c) {
#if SASYNTH_EVENT_LOOP_EPOLL
    const std::uint32_t want = wanted_events(c);
    if (want == c.registered_events) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = c.id;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev) == 0) {
      c.registered_events = want;
    }
#else
    (void)c;  // the poll fallback rebuilds its fd set every wait
#endif
  }

  /// One (id, revents) pair per ready fd, in poller order.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> wait(int timeout_ms) {
    static fault::Site& poll_site = fault::site(fault::kSiteLoopPoll);
    std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
    if (poll_site.fire() != fault::ErrorKind::kNone) {
      // Transient poller failure: skip this wait — completions and deadlines
      // are processed every iteration regardless of events, so nothing is
      // lost, and the brief sleep keeps an every-call fault from spinning.
      fault::note_degraded();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return out;
    }
#if SASYNTH_EVENT_LOOP_EPOLL
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd, events, 64, timeout_ms);
    if (n < 0) return out;  // EINTR (or worse): treat as an empty tick
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      const std::uint32_t revents = events[i].events;
      out.emplace_back(id, revents);
    }
#else
    std::vector<pollfd> fds;
    std::vector<std::uint64_t> ids;
    if (listener.fd() >= 0) {
      fds.push_back(pollfd{listener.fd(), POLLIN, 0});
      ids.push_back(kListenerId);
    }
    fds.push_back(pollfd{wake_read_fd, POLLIN, 0});
    ids.push_back(kWakeId);
    for (auto& [id, conn] : conns) {
      const short want = static_cast<short>(wanted_events(*conn));
      fds.push_back(pollfd{conn->fd, want, 0});
      ids.push_back(id);
    }
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n <= 0) return out;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents != 0) {
        out.emplace_back(ids[i], static_cast<std::uint32_t>(fds[i].revents));
      }
    }
#endif
    return out;
  }

  void drain_wake_fd() {
    char buf[64];
    while (::read(wake_read_fd, buf, sizeof(buf)) > 0) {
    }
  }

  /// Next wait bound: 250 ms tick (drain checks, lost-wakeup recovery),
  /// tightened by the nearest io/drain deadline.
  int wait_timeout_ms() const {
    std::int64_t t = 250;
    for (const auto& [id, conn] : conns) {
      if (!conn->read_deadline.unbounded()) {
        t = std::min(t, conn->read_deadline.remaining_ms());
      }
      if (!conn->write_deadline.unbounded()) {
        t = std::min(t, conn->write_deadline.remaining_ms());
      }
    }
    if (draining) t = std::min(t, drain_deadline.remaining_ms());
    return static_cast<int>(std::max<std::int64_t>(0, t));
  }

  // --- connection lifecycle --------------------------------------------

  Connection& add_connection(int fd) {
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id++;
    conn->fd = fd;
    if (io_timeout_ms > 0) {
      conn->read_deadline = Deadline::after_ms(io_timeout_ms);
    }
    set_nonblocking(fd);
#if SASYNTH_EVENT_LOOP_EPOLL
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    conn->registered_events = EPOLLIN;
#endif
    Connection& ref = *conn;
    conns.emplace(ref.id, std::move(conn));
    open_count.store(static_cast<std::int64_t>(conns.size()));
    LoopMetrics::get().connections.set(static_cast<std::int64_t>(conns.size()));
    LoopMetrics::get().connections_total.add(1);
    return ref;
  }

  void close_conn(Connection& c) {
#if SASYNTH_EVENT_LOOP_EPOLL
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
#endif
    ::close(c.fd);
    conns.erase(c.id);  // destroys c — no touching it past this line
    open_count.store(static_cast<std::int64_t>(conns.size()));
    LoopMetrics::get().connections.set(static_cast<std::int64_t>(conns.size()));
  }

  /// Close once the session is over and every byte is out.
  void maybe_close(Connection& c) {
    if (c.read_closed && c.flushed()) close_conn(c);
  }

  /// Transport failure (write error/timeout): the peer cannot receive
  /// answers, so pending work is abandoned — completions for this id will be
  /// dropped on arrival. Mirrors "first failed write ends the session".
  void fail_conn(Connection& c, const char* why) {
    SA_LOG_WARN << "event loop: " << why << " (conn " << c.id
                << "), ending session";
    fault::note_degraded();
    ::shutdown(c.fd, SHUT_RDWR);
    close_conn(c);
  }

  // --- accept -----------------------------------------------------------

  void do_accept() {
    static fault::Site& accept_site = fault::site(fault::kSiteTcpAccept);
    for (;;) {
      const int lfd = listener.fd();
      if (lfd < 0) return;
      int err;
      int client = -1;
      if (accept_site.fire() != fault::ErrorKind::kNone) {
        err = ECONNABORTED;  // every injected kind is a transient failure
      } else {
        client = ::accept(lfd, nullptr, nullptr);
        if (client < 0) err = errno;
      }
      if (client >= 0) {
        if (draining || server.stop_requested()) {
          ::close(client);  // no new sessions once the drain began
          continue;
        }
        if (options.max_connections > 0 &&
            static_cast<std::int64_t>(conns.size()) >=
                options.max_connections) {
          // Connection-level backpressure: answer with the retry verdict the
          // protocol already has, then hang up. Cheap, deterministic, and the
          // client's backoff logic is the same one queue-full exercises.
          LoopMetrics::get().connections_rejected.add(1);
          fault::note_degraded();
          Connection& c = add_connection(client);
          c.read_closed = true;
          c.outbuf = format_retry_response(
              strformat("connection limit reached (%lld open), retry later",
                        static_cast<long long>(options.max_connections)));
          if (io_timeout_ms > 0) {
            c.write_deadline = Deadline::after_ms(io_timeout_ms);
          }
          try_write(c);
          continue;
        }
        add_connection(client);
        continue;
      }
      if (err == EINTR) continue;
      if (err == EAGAIN || err == EWOULDBLOCK) return;  // backlog drained
      if (accept_errno_is_transient(err)) {
        SA_LOG_WARN << "accept: " << std::strerror(err) << ", retrying";
        fault::note_degraded();
        // Same brief backoff as the blocking listener: under fd exhaustion
        // an instant retry would spin without a session releasing one.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return;
      }
      if (err != EBADF && err != EINVAL) {
        SA_LOG_ERROR << "accept: " << std::strerror(err)
                     << ", stopping the accept loop";
      }
      listener.close_listener();
      return;
    }
  }

  // --- read side --------------------------------------------------------

  /// Ends the read side the way FdLineReader ends on error/timeout: the
  /// buffered partial *line* is dropped (a truncated request must never
  /// reach the parser as if complete), but lines already framed into a
  /// partial block are submitted — the blocking session does exactly that
  /// when read_line fails mid-block, and the parse error is the answer.
  void end_input(Connection& c) {
    c.inbuf.clear();
    c.read_closed = true;
    c.read_deadline = Deadline();
    if (c.in_block) submit_block(c);
    update_events(c);
    maybe_close(c);
  }

  void fail_read_timeout(Connection& c) {
    SA_LOG_WARN << "session read timed out after " << io_timeout_ms
                << " ms, dropping " << c.inbuf.size() << " buffered bytes";
    LoopMetrics::get().io_timeouts.add(1);
    fault::note_degraded();
    end_input(c);
  }

  void handle_eof(Connection& c) {
    // Clean EOF delivers a trailing unterminated line first (FdLineReader
    // semantics), then ends input.
    if (!c.inbuf.empty()) {
      const std::uint64_t id = c.id;
      std::string line = std::move(c.inbuf);
      c.inbuf.clear();
      dispatch_line(c, line);
      // dispatch_line can reach try_write (bare command) and a failed write
      // destroys the connection — re-resolve before ending input.
      auto it = conns.find(id);
      if (it == conns.end()) return;
      end_input(*it->second);
      return;
    }
    end_input(c);
  }

  void do_read(std::uint64_t id) {
    static fault::Site& read_site = fault::site(fault::kSiteTcpRead);
    // Bounded per event so one flooding client cannot starve the rest; the
    // level-triggered poller re-reports leftover bytes next iteration.
    for (int round = 0; round < 16; ++round) {
      auto it = conns.find(id);
      if (it == conns.end()) return;  // dispatch closed it (shutdown/drain)
      Connection& c = *it->second;
      if (c.read_closed) return;
      char chunk[4096];
      std::size_t want = sizeof(chunk);
      ssize_t n;
      const fault::ErrorKind injected = read_site.fire();
      if (injected == fault::ErrorKind::kStall) {
        // Peer went quiet mid-request. With a timeout configured this is
        // exactly what the timer exists for — model it as elapsed. Without
        // one, stall for real (briefly) and proceed, like FdLineReader.
        if (io_timeout_ms > 0) {
          fail_read_timeout(c);
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
      switch (injected) {
        case fault::ErrorKind::kNone:
        case fault::ErrorKind::kStall:
          n = ::read(c.fd, chunk, want);
          break;
        case fault::ErrorKind::kEintr:
          continue;  // retry immediately, like a real EINTR
        case fault::ErrorKind::kShortRead:
          want = 1;  // the kernel is allowed to return any prefix
          n = ::read(c.fd, chunk, want);
          break;
        default:  // epipe/corrupt/enospc/error: a fatal transport error
          n = -1;
          errno = EIO;
          break;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
        SA_LOG_WARN << "session read error: " << std::strerror(errno)
                    << ", dropping " << c.inbuf.size() << " buffered bytes";
        fault::note_degraded();
        end_input(c);
        return;
      }
      if (n == 0) {
        handle_eof(c);
        return;
      }
      c.inbuf.append(chunk, static_cast<std::size_t>(n));
      if (io_timeout_ms > 0) {
        c.read_deadline = Deadline::after_ms(io_timeout_ms);
      }
      process_inbuf(id);  // may destroy c; the loop re-resolves by id
    }
  }

  void process_inbuf(std::uint64_t id) {
    for (;;) {
      // Re-resolved every iteration: dispatch_line can reach try_write (a
      // bare command answers inline) and a failed response write destroys
      // the connection mid-call — the reference must never outlive one
      // dispatch.
      auto it = conns.find(id);
      if (it == conns.end()) return;
      Connection& c = *it->second;
      if (c.read_closed) return;
      const std::size_t newline = c.inbuf.find('\n');
      if (newline == std::string::npos) return;
      std::string line = c.inbuf.substr(0, newline);
      c.inbuf.erase(0, newline + 1);
      dispatch_line(c, line);
      // A `shutdown` command (from any connection) or a concurrent drain
      // stops further dispatch; leftover input is never read, exactly like
      // the blocking session loop's !stop && !draining guard.
      if (server.stop_requested() || server.draining()) {
        auto again = conns.find(id);
        if (again != conns.end()) end_input(*again->second);
        return;
      }
    }
  }

  void dispatch_line(Connection& c, const std::string& raw_line) {
    const std::string command = trim(raw_line);
    if (c.in_block) {
      c.block += raw_line + "\n";
      if (command == kBlockEnd) submit_block(c);
      return;
    }
    if (command.empty()) return;
    if (command == kRequestMagic || command == kDeployRequestMagic ||
        command == kShardRequestMagic) {
      c.in_block = true;
      c.kind = command == kDeployRequestMagic
                   ? SynthServer::BlockKind::kDeploy
               : command == kShardRequestMagic
                   ? SynthServer::BlockKind::kShard
                   : SynthServer::BlockKind::kSynth;
      c.block = command + "\n";
      return;
    }
    // Bare command. `stats`/`shutdown` drain the scheduler *on the loop
    // thread* — every connection pauses until in-flight work settles. That
    // is the documented cost of asking for settled counters; `health` stays
    // instant for exactly this reason.
    post_local(c, c.next_seq++, server.handle_command(command));
  }

  void submit_block(Connection& c) {
    c.in_block = false;
    const std::uint64_t seq = c.next_seq++;
    std::string block = std::move(c.block);
    c.block.clear();
    // The post closure owns only (waker, id, seq): the connection may be
    // long gone when a slow DSE completes, and a completion for a dead id is
    // dropped at the loop, never dereferenced.
    std::shared_ptr<Waker> w = waker;
    const std::uint64_t id = c.id;
    server.submit_session_block(
        std::move(block), c.kind, seq,
        [w, id](std::uint64_t s, std::string response) {
          w->post(id, s, std::move(response));
        });
  }

  // --- write side -------------------------------------------------------

  void post_local(Connection& c, std::uint64_t seq, std::string response) {
    c.ready.emplace(seq, std::move(response));
    ++c.posted;
    flush_ready(c);
  }

  void apply_completion(Completion&& done) {
    auto it = conns.find(done.conn_id);
    if (it == conns.end()) return;  // session ended mid-flight; peer is gone
    Connection& c = *it->second;
    c.ready.emplace(done.seq, std::move(done.response));
    ++c.posted;
    flush_ready(c);
  }

  /// Moves consecutively-ready responses into outbuf, strictly in request
  /// order (submit_session_block posts every seq exactly once, so there are
  /// no holes to skip), then pushes bytes.
  void flush_ready(Connection& c) {
    const bool was_empty = c.outbuf.empty();
    while (!c.ready.empty() && c.ready.begin()->first == c.next_emit) {
      c.outbuf += c.ready.begin()->second;
      c.ready.erase(c.ready.begin());
      ++c.next_emit;
    }
    if (!c.outbuf.empty() && was_empty && io_timeout_ms > 0) {
      c.write_deadline = Deadline::after_ms(io_timeout_ms);
    }
    try_write(c);
  }

  void try_write(Connection& c) {
    static fault::Site& write_site = fault::site(fault::kSiteTcpWrite);
    while (!c.outbuf.empty()) {
      std::size_t want = c.outbuf.size();
      const fault::ErrorKind injected = write_site.fire();
      if (injected == fault::ErrorKind::kEintr) continue;  // retryable
      if (injected == fault::ErrorKind::kShortRead) {
        want = 1;  // short write: the kernel took one byte
      } else if (injected == fault::ErrorKind::kStall) {
        // Peer stopped draining its receive buffer: with a timeout it *is*
        // the timeout; without one, a brief real stall (write_all_fd rules).
        if (io_timeout_ms > 0) {
          LoopMetrics::get().io_timeouts.add(1);
          fail_conn(c, "session write timed out");
          return;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      } else if (injected != fault::ErrorKind::kNone) {
        fail_conn(c, "session write failed (injected peer loss)");
        return;
      }
      ssize_t n = ::send(c.fd, c.outbuf.data(), want, MSG_NOSIGNAL);
      if (n < 0 && errno == ENOTSOCK) {
        n = ::write(c.fd, c.outbuf.data(), want);
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          update_events(c);  // send buffer full: wait for writability
          return;
        }
        fail_conn(c, "session write failed");
        return;
      }
      c.outbuf.erase(0, static_cast<std::size_t>(n));
      if (io_timeout_ms > 0) {
        c.write_deadline = Deadline::after_ms(io_timeout_ms);
      }
    }
    c.write_deadline = Deadline();
    update_events(c);
    maybe_close(c);
  }

  // --- deadlines / drain ------------------------------------------------

  void check_io_deadlines() {
    if (io_timeout_ms <= 0) return;
    std::vector<std::uint64_t> read_expired;
    std::vector<std::uint64_t> write_expired;
    for (const auto& [id, conn] : conns) {
      if (!conn->read_closed && conn->read_deadline.expired()) {
        read_expired.push_back(id);
      } else if (!conn->outbuf.empty() && conn->write_deadline.expired()) {
        write_expired.push_back(id);
      }
    }
    for (const std::uint64_t id : read_expired) {
      auto it = conns.find(id);
      if (it != conns.end()) fail_read_timeout(*it->second);
    }
    for (const std::uint64_t id : write_expired) {
      auto it = conns.find(id);
      if (it != conns.end()) {
        LoopMetrics::get().io_timeouts.add(1);
        fail_conn(*it->second, "session write timed out");
      }
    }
  }

  void enter_drain() {
    if (draining) return;
    draining = true;
    drain_deadline = Deadline::after_ms(options.drain_timeout_ms);
    listener.close_listener();  // closing also deregisters it from epoll
    server.begin_drain();
    // Stop reading everywhere; sessions finish in-flight work and flush.
    // Mid-frame input ends the way a blocking drain ends it: the partial
    // block is submitted and the parse error is the final answer.
    std::vector<std::uint64_t> ids;
    ids.reserve(conns.size());
    for (const auto& [id, conn] : conns) ids.push_back(id);
    for (const std::uint64_t id : ids) {
      auto it = conns.find(id);
      if (it != conns.end() && !it->second->read_closed) {
        end_input(*it->second);
      } else if (it != conns.end()) {
        maybe_close(*it->second);
      }
    }
  }

  bool drained() const {
    return conns.empty() && server.scheduler().pending() == 0;
  }

  // --- the loop ---------------------------------------------------------

  int run() {
    for (;;) {
      if ((stop_requested.load() || server.stop_requested() ||
           server.draining()) &&
          !draining) {
        enter_drain();
      }
      if (draining) {
        if (drained()) return 0;
        if (drain_deadline.expired()) {
          SA_LOG_WARN << "event loop: drain timeout with "
                      << server.scheduler().pending() << " request(s) and "
                      << conns.size() << " connection(s) still open";
          std::vector<std::uint64_t> ids;
          for (const auto& [id, conn] : conns) ids.push_back(id);
          for (const std::uint64_t id : ids) {
            auto it = conns.find(id);
            if (it != conns.end()) close_conn(*it->second);
          }
          return 1;
        }
      }

      const auto events = wait(wait_timeout_ms());
      drain_wake_fd();
      std::vector<Completion> completions;
      {
        std::lock_guard<std::mutex> lock(waker->mutex);
        completions.swap(waker->queue);
      }

      if (!events.empty() || !completions.empty()) {
        obs::ScopedSpan span("loop.iteration", "serve");
        span.arg("events", static_cast<std::int64_t>(events.size()));
        span.arg("completions",
                 static_cast<std::int64_t>(completions.size()));

        for (Completion& done : completions) {
          apply_completion(std::move(done));
        }
        for (const auto& [id, revents] : events) {
          if (id == kWakeId) continue;  // already drained above
          if (id == kListenerId) {
            do_accept();
            continue;
          }
          auto it = conns.find(id);
          if (it == conns.end()) continue;  // closed earlier this iteration
#if SASYNTH_EVENT_LOOP_EPOLL
          const bool readable = (revents & EPOLLIN) != 0;
          const bool writable = (revents & EPOLLOUT) != 0;
          const bool broken = (revents & (EPOLLERR | EPOLLHUP)) != 0;
#else
          const bool readable = (revents & POLLIN) != 0;
          const bool writable = (revents & POLLOUT) != 0;
          const bool broken = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
#endif
          if (readable || (broken && !it->second->read_closed)) {
            do_read(id);
            it = conns.find(id);
            if (it == conns.end()) continue;
          }
          if (writable && !it->second->outbuf.empty()) {
            try_write(*it->second);
            it = conns.find(id);
            if (it == conns.end()) continue;
          }
          if (broken && it->second->read_closed) {
            // Peer fully gone while we wait on its in-flight work: without
            // this the level-triggered poller reports the corpse forever.
            fail_conn(*it->second, "peer closed mid-flight");
          }
        }
      }

      check_io_deadlines();
    }
  }
};

EventLoopServer::EventLoopServer(SynthServer& server, EventLoopOptions options)
    : impl_(std::make_unique<Impl>(server, options)) {}

EventLoopServer::~EventLoopServer() = default;

bool EventLoopServer::start(std::string* error) { return impl_->start(error); }

int EventLoopServer::port() const { return impl_->listener.port(); }

int EventLoopServer::run() { return impl_->run(); }

void EventLoopServer::request_stop() {
  impl_->stop_requested.store(true);
  impl_->waker->wake();
}

std::int64_t EventLoopServer::open_connections() const {
  return impl_->open_count.load();
}

}  // namespace sasynth
