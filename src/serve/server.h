// The synthesis server: protocol sessions + DesignCache + scheduler +
// counters, behind any line-based transport (stdio, TCP, tests).
//
// One SynthServer is shared by every session of a deployment: the cache, the
// admission queue and the counters are global, while each serve() call runs
// its own session (request framing, ordered responses, its own writer
// thread). handle() — the per-request unit — is thread-safe and a pure
// function of the request text, so responses are byte-identical regardless
// of worker count, interleaving, or cache state.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "serve/deploy_protocol.h"
#include "serve/design_cache.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/shard.h"
#include "serve/singleflight.h"
#include "serve/sweep_cache.h"
#include "util/deadline.h"

namespace sasynth {

struct ServeOptions {
  /// Worker threads shared by all sessions (ThreadPool resolution rules;
  /// 1 = inline, deterministic single-thread serving).
  int jobs = 0;
  /// Admission bound: in-flight requests beyond this are refused with a
  /// retry response instead of queuing (explicit backpressure).
  std::int64_t queue_limit = 64;
  bool cache_enabled = true;
  /// On-disk store directory; empty = in-memory LRU only.
  std::string cache_dir;
  std::size_t cache_capacity = 1024;
  /// Entry bound of the cross-request SweepCache (serve/sweep_cache.h), the
  /// incremental-DSE tier below the exact-match DesignCache: per-(mapping,
  /// shape) sweep results shared across requests. 0 disables it. Unlike the
  /// DesignCache it is not gated on `cache_enabled` — a warm sweep cache can
  /// change only DSE time, never a response byte, so it is execution policy
  /// rather than a response cache.
  std::size_t sweep_cache_capacity = 65536;
  /// Deadline applied to requests that carry no deadline_ms field, in
  /// milliseconds; 0 = none (requests without a deadline run unbounded).
  std::int64_t default_deadline_ms = 0;
  /// Transport read/write timeout for fd-based sessions (serve_fd_session),
  /// milliseconds; 0 = no timeout. A stalled client (slow-loris) loses its
  /// session when the timer fires — the daemon and every other session keep
  /// going.
  std::int64_t io_timeout_ms = 0;
  /// Shard-coordinator worker endpoints ("host:port" each, --peers). Empty
  /// (the default) serves single-node; nonempty routes every cache-missing
  /// synthesis request's phase 1 through the peer fleet (serve/shard.h),
  /// with byte-identical responses either way.
  std::vector<std::string> shard_peers;
  /// Per-step (connect/write/read) bound on shard peer I/O, milliseconds;
  /// 0 = unbounded (--shard-io-timeout).
  std::int64_t shard_io_timeout_ms = 30000;
  /// Consecutive peer failures that open that peer's circuit breaker
  /// (--peer-failure-threshold; serve/peer_health.h).
  int shard_failure_threshold = 3;
  /// Background health-prober cadence and backoff base, milliseconds
  /// (--peer-probe-interval); 0 disables automatic re-admission probing.
  std::int64_t shard_probe_interval_ms = 1000;
  /// Hedge delay for slow shard peers, milliseconds (--shard-hedge-ms);
  /// 0 disables hedging.
  std::int64_t shard_hedge_ms = 0;
};

/// Monotonic per-server counters, exposed through the `stats` command.
struct ServerCounters {
  std::atomic<std::int64_t> requests{0};   ///< request blocks received
  std::atomic<std::int64_t> ok{0};
  std::atomic<std::int64_t> errors{0};
  std::atomic<std::int64_t> rejected{0};   ///< backpressure refusals
  std::atomic<std::int64_t> timeouts{0};   ///< timeout verdicts (all causes)
  /// Deadline-shedding split of `timeouts`: dead on arrival vs died queued
  /// (including coalesced followers whose own deadline fired while waiting
  /// on a leader).
  std::atomic<std::int64_t> rejected_expired{0};
  std::atomic<std::int64_t> shed_expired{0};
  /// Requests answered by joining another session's identical in-flight
  /// request (singleflight) instead of executing their own.
  std::atomic<std::int64_t> coalesced{0};
  std::atomic<std::int64_t> commands{0};   ///< stats/ping/health/shutdown
  std::atomic<std::int64_t> dse_runs{0};
  /// Sum of DseStats::work_items over all fresh explorations — the flatness
  /// of this counter across a warm-cache replay is the proof that cache hits
  /// never re-enter enumerate_phase1.
  std::atomic<std::int64_t> dse_work_items{0};
  std::atomic<std::int64_t> wall_us_total{0};  ///< per-request wall time, summed
  std::atomic<std::int64_t> wall_us_max{0};
};

class SynthServer {
 public:
  using LineSource = std::function<bool(std::string*)>;
  using ResponseSink = std::function<void(const std::string&)>;

  explicit SynthServer(ServeOptions options);

  /// Handles one request block synchronously: parse -> cache lookup ->
  /// (on miss) two-phase DSE + cache insert -> evaluate models -> format.
  /// Returns the full response text. Thread-safe.
  std::string handle(const std::string& request_block);

  /// Same, under a cancel token: the DSE polls `cancel` and a fired token
  /// yields a `timeout` verdict (with the best-so-far design when one
  /// exists) that is never stored into the DesignCache. Cache hits answer
  /// `ok` even if the token already fired — the lookup precedes any DSE
  /// work, so it beats every realistic budget.
  std::string handle(const std::string& request_block, CancelToken cancel);

  /// Handles one `sasynth-deploy v1` block (deploy_protocol.h): parse ->
  /// per-design cache lookups (all K must hit) -> (on miss) fleet selection
  /// + cache insert -> deploy::evaluate_fleet -> format. Hit and miss paths
  /// both answer through evaluate_fleet, so cached responses are
  /// byte-identical to fresh ones. Thread-safe.
  std::string handle_deploy(const std::string& request_block);
  std::string handle_deploy(const std::string& request_block,
                            CancelToken cancel);

  /// Handles one `sasynth-shard v1` block (serve/shard.h) — the worker side
  /// of the shard tier: parse -> windowed phase-1 sweep (through the shared
  /// SweepCache, so a fleet of daemons warms into one logical sweep cache)
  /// -> partial top-K response. No DesignCache involvement: a windowed
  /// partial is not a full response, and the coordinator owns the response
  /// cache. Thread-safe.
  std::string handle_shard(const std::string& request_block);
  std::string handle_shard(const std::string& request_block,
                           CancelToken cancel);

  /// Runs one session: frames request blocks and commands from `read_line`
  /// (false = EOF), fans requests through the scheduler, and emits responses
  /// through `write_response` in request order from a dedicated writer
  /// thread. Returns after EOF or `shutdown`, with all accepted work drained
  /// and flushed. Multiple sessions may run concurrently on one server.
  void serve(const LineSource& read_line, const ResponseSink& write_response);

  /// Delivers the response for one session sequence number. May be invoked
  /// on any thread (a pool worker, another session's thread, or inline from
  /// submit_session_block), exactly once per submitted seq.
  using PostResponse =
      std::function<void(std::uint64_t seq, std::string response)>;

  /// What a session block is, decided by its magic line at framing time.
  enum class BlockKind {
    kSynth,   ///< sasynth-request v1
    kDeploy,  ///< sasynth-deploy v1
    kShard,   ///< sasynth-shard v1 (worker side of the shard tier)
  };

  /// Session-block admission shared by the blocking serve() session and the
  /// event loop (serve/event_loop.h): resolves the request's end-to-end
  /// budget (explicit deadline_ms wins, else --default-deadline, else
  /// unbounded), coalesces identical in-flight requests through the
  /// singleflight table, and submits leaders through the scheduler. `post`
  /// is called exactly once with the response for `seq` — possibly before
  /// this returns (inline execution, admission refusal) and possibly on
  /// another thread. A coalesced follower costs no scheduler slot; it is
  /// answered from the leader's completion (shareable verdicts) or by
  /// re-executing under its own cancel token (the leader timed out — a
  /// timeout reflects the leader's budget, never the follower's). Shard
  /// blocks are never coalesced: two windows of one request are distinct
  /// work, and the coordinator already dedups at the request level.
  void submit_session_block(std::string block, BlockKind kind,
                            std::uint64_t seq, PostResponse post);

  /// Back-compat spelling (pre-shard callers and tests): true = deploy.
  void submit_session_block(std::string block, bool is_deploy,
                            std::uint64_t seq, PostResponse post) {
    submit_session_block(std::move(block),
                         is_deploy ? BlockKind::kDeploy : BlockKind::kSynth,
                         seq, std::move(post));
  }

  /// Dispatches one bare protocol command (`ping`, `health`, `stats`,
  /// `stats --format=prom|json`, `shutdown`, or unknown) and returns its
  /// response text. `stats` and `shutdown` drain the scheduler first (the
  /// documented blocking points); `shutdown` also flips stop_requested().
  /// Shared by both transports so command semantics cannot drift.
  std::string handle_command(const std::string& command);

  /// `stats` command payload (drained sessions make it deterministic up to
  /// wall-clock fields).
  std::string stats_text() const;

  /// `health` command payload. Unlike `stats` it does NOT drain first — an
  /// overloaded daemon must still answer its health probe instantly.
  std::string health_text() const;

  /// True once any session processed `shutdown` — transports stop accepting.
  bool stop_requested() const { return stop_.load(); }

  /// Graceful-drain entry (SIGTERM path): flips the server into draining
  /// mode — sessions stop reading further input, health reports `draining` —
  /// without waiting. The caller bounds the actual drain via
  /// scheduler().drain_for().
  void begin_drain();

  /// True between begin_drain() and process exit.
  bool draining() const { return draining_.load(); }

  const ServeOptions& options() const { return options_; }
  const ServerCounters& counters() const { return counters_; }
  DesignCache& cache() { return cache_; }
  SweepCache& sweep_cache() { return sweep_cache_; }
  RequestScheduler& scheduler() { return scheduler_; }
  SingleFlight& singleflight() { return singleflight_; }

 private:
  /// Follower-side delivery of a completed flight (see submit_session_block).
  void deliver_coalesced(const std::string& block, bool is_deploy,
                         std::uint64_t seq, const CancelToken& token,
                         const PostResponse& post, const std::string& response,
                         bool shared);

  ServeOptions options_;
  ShardCoordinator shard_;
  DesignCache cache_;
  SweepCache sweep_cache_;
  ServerCounters counters_;
  SingleFlight singleflight_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();  ///< uptime_s origin for `health`
  // Declared last so in-flight request lambdas (which touch the members
  // above) finish before anything else is torn down.
  RequestScheduler scheduler_;
};

}  // namespace sasynth
