#include "serve/design_cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/design_io.h"
#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sasynth {

namespace {
constexpr const char* kCacheMagic = "sasynth-cache v1";

/// Cache metrics (docs/OBSERVABILITY.md). The DesignCacheStats struct stays
/// the per-cache view returned over the wire; these are the process-global
/// counterparts every cache instance feeds.
struct CacheMetrics {
  obs::Counter& probes;
  obs::Counter& hits;
  obs::Counter& disk_hits;
  obs::Counter& load_failures;
  obs::Counter& stores;
  obs::Counter& evictions;
  obs::Counter& disk_store_failures;

  static CacheMetrics& get() {
    static CacheMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new CacheMetrics{
          r.counter("cache_probes_total"),
          r.counter("cache_hits_total"),
          r.counter("cache_disk_hits_total"),
          r.counter("cache_load_failures_total"),
          r.counter("cache_stores_total"),
          r.counter("cache_evictions_total"),
          r.counter("cache_disk_store_failures_total"),
      };
    }();
    return *m;
  }
};
}  // namespace

DesignCache::DesignCache(std::string dir, std::size_t capacity)
    : dir_(std::move(dir)), capacity_(capacity == 0 ? 1 : capacity) {}

std::string DesignCache::entry_path(std::uint64_t key) const {
  return dir_ + "/" + strformat("%016llx", static_cast<unsigned long long>(key)) +
         ".design";
}

bool DesignCache::lookup(const std::string& canonical_request,
                         const LoopNest& nest, DesignPoint* out) {
  const std::uint64_t key = fnv1a64(canonical_request);
  CacheMetrics::get().probes.add(1);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.canonical == canonical_request) {
    // Revalidate against this request's nest: a design cached for one nest
    // must never leak into another (collision through the canonical check is
    // impossible, but the nest check also guards callers passing mismatched
    // canonical/nest pairs).
    const std::string validation = it->second.design.validate(nest);
    if (validation.empty()) {
      *out = it->second.design;
      touch(it->second, key);
      ++stats_.hits;
      CacheMetrics::get().hits.add(1);
      return true;
    }
    SA_LOG_WARN << "design cache: in-memory entry invalid for nest ("
                << validation << "), treating as miss";
  }
  if (!dir_.empty() && load_from_disk(key, canonical_request, nest, out)) {
    // Promote to memory so a hot key stops paying disk I/O.
    insert_locked(key, canonical_request, *out);
    ++stats_.hits;
    ++stats_.disk_hits;
    CacheMetrics& cm = CacheMetrics::get();
    cm.hits.add(1);
    cm.disk_hits.add(1);
    return true;
  }
  ++stats_.misses;
  return false;
}

void DesignCache::insert(const std::string& canonical_request,
                         const DesignPoint& design) {
  const std::uint64_t key = fnv1a64(canonical_request);
  std::lock_guard<std::mutex> lock(mutex_);
  insert_locked(key, canonical_request, design);
  ++stats_.insertions;
  CacheMetrics::get().stores.add(1);
  if (!dir_.empty()) store_to_disk(key, canonical_request, design);
}

void DesignCache::insert_locked(std::uint64_t key,
                                const std::string& canonical_request,
                                const DesignPoint& design) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.canonical = canonical_request;
    it->second.design = design;
    touch(it->second, key);
    return;
  }
  static fault::Site& evict_site = fault::site(fault::kSiteCacheEvict);
  while (entries_.size() >= capacity_) {
    if (evict_site.fire() != fault::ErrorKind::kNone) {
      // Injected eviction failure: degrade by dropping the whole memory
      // tier, as if the process had just restarted. Correctness is
      // untouched — every later lookup falls through to disk or to a fresh
      // DSE, both of which yield byte-identical responses.
      SA_LOG_WARN << "design cache: injected eviction fault, dropping all "
                  << entries_.size() << " in-memory entries";
      fault::note_degraded();
      const std::int64_t dropped = static_cast<std::int64_t>(entries_.size());
      stats_.evictions += dropped;
      CacheMetrics::get().evictions.add(dropped);
      entries_.clear();
      lru_.clear();
      break;
    }
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
    CacheMetrics::get().evictions.add(1);
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{canonical_request, design, lru_.begin()});
}

void DesignCache::touch(Entry& entry, std::uint64_t key) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
}

bool DesignCache::load_from_disk(std::uint64_t key,
                                 const std::string& canonical_request,
                                 const LoopNest& nest, DesignPoint* out) {
  obs::ScopedSpan span("cache.disk_load", "serve");
  static fault::Site& load_site = fault::site(fault::kSiteCacheLoad);
  const std::string path = entry_path(key);
  std::ifstream in(path);
  if (!in) return false;  // no entry: a plain miss, not a failure
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();

  auto reject = [&](const char* why) {
    ++stats_.load_failures;
    CacheMetrics::get().load_failures.add(1);
    fault::note_degraded();
    SA_LOG_WARN << "design cache: discarding " << path << " (" << why
                << "), falling back to a fresh DSE";
    return false;
  };

  // A disk error mid-read leaves a prefix in `text`; parsing it could
  // resurrect a stale half-entry, so it is a failure, not a short file.
  if (in.bad()) return reject("read error");
  switch (load_site.fire()) {
    case fault::ErrorKind::kNone:
      break;
    case fault::ErrorKind::kCorrupt:
      // Flip bytes at the quarter points (sparing newlines, which carry the
      // framing): wherever they land — magic, key, canonical request, or
      // design blob — a validation layer below must catch it.
      for (const std::size_t at :
           {text.size() / 4, text.size() / 2, (3 * text.size()) / 4}) {
        if (at < text.size() && text[at] != '\n') text[at] ^= 0x15;
      }
      break;
    default:  // error/eintr/...: the read itself failed
      return reject("injected read error");
  }

  // Header, key, canonical request ("req " lines), then the design blob.
  const std::vector<std::string> lines = split(text, '\n');
  std::size_t i = 0;
  auto next_line = [&]() -> std::string {
    while (i < lines.size()) {
      const std::string line = trim(lines[i++]);
      if (!line.empty()) return line;
    }
    return "";
  };
  if (next_line() != kCacheMagic) return reject("bad magic");
  const std::string key_line = next_line();
  if (key_line != "key " + strformat("%016llx",
                                     static_cast<unsigned long long>(key))) {
    return reject("key mismatch");
  }
  std::string stored_canonical;
  std::size_t design_start = i;
  for (std::string line = next_line(); !line.empty(); line = next_line()) {
    if (!starts_with(line, "req ")) {
      design_start = i - 1;  // first non-req line opens the design blob
      break;
    }
    stored_canonical += line.substr(4) + "\n";
  }
  // The req-line encoding is newline-normalized, so compare against the
  // newline-terminated form of the caller's key.
  std::string want = canonical_request;
  if (!want.empty() && want.back() != '\n') want += '\n';
  if (stored_canonical != want) {
    return reject("canonical request mismatch (hash collision or stale file)");
  }
  std::string design_text;
  for (std::size_t l = design_start; l < lines.size(); ++l) {
    design_text += lines[l] + "\n";
  }
  const DesignLoadResult loaded = load_design_text(design_text, nest);
  if (!loaded.ok) return reject(loaded.error.c_str());
  *out = loaded.design;
  return true;
}

void DesignCache::store_to_disk(std::uint64_t key,
                                const std::string& canonical_request,
                                const DesignPoint& design) {
  obs::ScopedSpan span("cache.disk_store", "serve");
  static fault::Site& store_site = fault::site(fault::kSiteCacheStore);
  // Every early return below is one failed persist; the caller already
  // counted the insertion, so this is the only place that keeps the stats
  // honest about what actually reached disk. (Called under mutex_.)
  auto count_failure = [this] {
    ++stats_.disk_store_failures;
    CacheMetrics::get().disk_store_failures.add(1);
    fault::note_degraded();
  };
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    SA_LOG_WARN << "design cache: cannot create " << dir_ << " ("
                << ec.message() << "), running in-memory only";
    count_failure();
    return;
  }
  const fault::ErrorKind injected = store_site.fire();
  if (injected != fault::ErrorKind::kNone) {
    // ENOSPC & friends: the entry simply is not persisted. The in-memory
    // tier still has it; a later cold process re-runs the DSE — slower,
    // byte-identical.
    SA_LOG_WARN << "design cache: injected " << fault::kind_name(injected)
                << " writing " << entry_path(key) << ", entry not persisted";
    count_failure();
    return;
  }
  std::string text = std::string(kCacheMagic) + "\n";
  text += "key " +
          strformat("%016llx", static_cast<unsigned long long>(key)) + "\n";
  for (const std::string& line : split(canonical_request, '\n')) {
    if (!line.empty()) text += "req " + line + "\n";
  }
  text += save_design_text(design);

  // Write-then-rename so a concurrent reader never observes a torn entry
  // (and a crashed writer leaves at worst a stale .tmp, not a corrupt key).
  const std::string path = entry_path(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream outf(tmp, std::ios::trunc);
    outf << text;
    // Flush and close before judging success: a full disk often only
    // surfaces when buffered bytes hit the kernel, and renaming a
    // short-written tmp would publish a torn entry under the real key.
    outf.flush();
    outf.close();
    if (!outf) {
      SA_LOG_WARN << "design cache: cannot write " << tmp;
      count_failure();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    SA_LOG_WARN << "design cache: cannot rename " << tmp << " -> " << path
                << " (" << ec.message() << ")";
    count_failure();
    std::filesystem::remove(tmp, ec);
  }
}

DesignCacheStats DesignCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t DesignCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace sasynth
