#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>

#include "core/perf_model.h"
#include "core/resource_model.h"
#include "core/unified.h"
#include "deploy/fleet.h"
#include "faultinject/faultinject.h"
#include "fpga/freq_model.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sasynth {

namespace {

void bump_max(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t seen = slot.load();
  while (value > seen && !slot.compare_exchange_weak(seen, value)) {
  }
}

/// Process-global mirrors of ServerCounters (docs/OBSERVABILITY.md). The
/// per-server struct stays the `stats` wire format; these aggregate across
/// every server in the process and feed `stats --format=prom|json`.
struct ServeMetrics {
  obs::Counter& requests;
  obs::Counter& ok;
  obs::Counter& errors;
  obs::Counter& timeouts;
  /// Shared with SchedMetrics (the registry dedups by name): the scheduler
  /// bumps these at its own refusal/shed points, but a coalesced follower
  /// never enters the scheduler — its retry/shed verdicts are counted here
  /// so `stats --format=prom|json` agrees with the legacy stats block.
  obs::Counter& rejected;
  obs::Counter& shed_expired;
  obs::Counter& commands;
  /// Requests answered by coalescing onto an identical in-flight request
  /// (singleflight followers) — the across-concurrency twin of cache_hits.
  obs::Counter& coalesced;
  obs::Counter& dse_runs;
  obs::Counter& dse_work_items;
  obs::Histogram& request_ms;
  /// Budget left when a deadlined request finished (0 for timeouts): how
  /// close production deadlines run to the edge.
  obs::Histogram& deadline_slack_ms;

  static ServeMetrics& get() {
    static ServeMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new ServeMetrics{
          r.counter("serve_requests_total"),
          r.counter("serve_ok_total"),
          r.counter("serve_errors_total"),
          r.counter("serve_timeouts_total"),
          r.counter("serve_rejected_total"),
          r.counter("serve_shed_expired_total"),
          r.counter("serve_commands_total"),
          r.counter("serve_coalesced_total"),
          r.counter("serve_dse_runs_total"),
          r.counter("serve_dse_work_items_total"),
          r.histogram("serve_request_ms"),
          r.histogram("request_deadline_slack_ms"),
      };
    }();
    return *m;
  }
};

/// Fixed timeout messages (no numbers/timestamps), keyed by where the
/// deadline fired, so timed-out responses stay deterministic.
constexpr const char* kTimeoutAtAdmission = "deadline expired before admission";
constexpr const char* kTimeoutInQueue = "deadline expired waiting in queue";
constexpr const char* kTimeoutInDse =
    "deadline exceeded during design space exploration";
constexpr const char* kTimeoutInFleet =
    "deadline exceeded during fleet selection";

/// Singleflight sharing policy: ok/error/retry verdicts are pure functions
/// of the request text and may be handed to every coalesced follower
/// byte-for-byte. A timeout verdict reflects the *leader's* deadline — a
/// follower with a different (or no) budget must never receive it, so the
/// flight completes unshared and each follower answers under its own token.
bool response_is_shareable(const std::string& response) {
  const std::string magic = std::string(kResponseMagic) + " ";
  return starts_with(response, magic + "ok") ||
         starts_with(response, magic + "error") ||
         starts_with(response, magic + "retry");
}

}  // namespace

SynthServer::SynthServer(ServeOptions options)
    : options_(std::move(options)),
      shard_(ShardOptions{options_.shard_peers, options_.shard_io_timeout_ms,
                          options_.shard_failure_threshold,
                          options_.shard_probe_interval_ms,
                          options_.shard_hedge_ms}),
      cache_(options_.cache_enabled ? options_.cache_dir : std::string(),
             options_.cache_capacity),
      sweep_cache_(options_.sweep_cache_capacity),
      scheduler_(options_.jobs, options_.queue_limit) {}

std::string SynthServer::handle(const std::string& request_block) {
  return handle(request_block, CancelToken());
}

std::string SynthServer::handle(const std::string& request_block,
                                CancelToken cancel) {
  // One span per request; its clock also feeds the wall_us counters and the
  // serve_request_ms histogram, so `stats`, prom and the trace all agree.
  obs::ScopedSpan span("serve.handle", "serve");
  ServeMetrics& sm = ServeMetrics::get();
  counters_.requests.fetch_add(1);
  sm.requests.add(1);

  auto finish = [&](std::string response) {
    const std::int64_t us =
        static_cast<std::int64_t>(span.elapsed_seconds() * 1e6);
    counters_.wall_us_total.fetch_add(us);
    bump_max(counters_.wall_us_max, us);
    sm.request_ms.observe(static_cast<double>(us) * 1e-3);
    if (!cancel.deadline().unbounded()) {
      sm.deadline_slack_ms.observe(static_cast<double>(
          std::max<std::int64_t>(0, cancel.deadline().remaining_ms())));
    }
    return response;
  };

  const ParsedRequest parsed = parse_request_block(request_block);
  if (!parsed.ok) {
    counters_.errors.fetch_add(1);
    sm.errors.add(1);
    return finish(format_error_response(parsed.error));
  }
  // Mutable copy so the session's cancel token rides into the DSE. The token
  // (like dse.jobs) is execution policy: canonical_request_text never sees
  // it, so the cache key is unchanged.
  ServeRequest request = parsed.request;
  request.dse.cancel = cancel;
  // Like the token: execution policy, invisible to the canonical text. The
  // DSE consults the sweep cache per work item (exact replay + bound-floor
  // hints); a warm cache shortens the sweep without touching its result.
  if (options_.sweep_cache_capacity > 0) {
    request.dse.sweep_memo = &sweep_cache_;
  }
  const LoopNest nest = build_conv_nest(request.layer);
  const std::string canonical = canonical_request_text(request);

  DesignPoint design;
  bool timed_out = false;
  bool have_design =
      options_.cache_enabled && cache_.lookup(canonical, nest, &design);
  if (have_design) {
    // A cache hit always answers `ok`, even when the token already fired:
    // the lookup runs before any DSE work, so it beats every budget that
    // survived admission.
    SA_LOG_INFO << "cache hit key="
                << strformat("%016llx", static_cast<unsigned long long>(
                                            fnv1a64(canonical)))
                << " layer=" << request.layer.summary();
  } else {
    // With --peers configured, phase 1 fans out over the shard fleet; the
    // coordinator's merge contract makes both paths byte-identical, so the
    // choice is invisible to clients and to the cache.
    const DesignSpaceExplorer explorer(request.device, request.dtype,
                                       request.dse);
    const DseResult result = shard_.enabled() ? shard_.explore(request, nest)
                                              : explorer.explore(nest);
    counters_.dse_runs.fetch_add(1);
    counters_.dse_work_items.fetch_add(result.stats.work_items);
    sm.dse_runs.add(1);
    sm.dse_work_items.add(result.stats.work_items);
    timed_out = result.status == DseStatus::kCancelled;
    if (result.empty()) {
      if (timed_out) {
        // The deadline fired before any candidate survived: a payload-free
        // timeout, not an error — the layer may be perfectly synthesizable.
        counters_.timeouts.fetch_add(1);
        sm.timeouts.add(1);
        return finish(format_timeout_response(kTimeoutInDse));
      }
      counters_.errors.fetch_add(1);
      sm.errors.add(1);
      return finish(format_error_response(
          "design space exploration found no valid design for this "
          "layer/device"));
    }
    design = result.best()->design;
    have_design = true;
    // A partial sweep must never poison the cache: the next (undeadlined)
    // request for this key has to run the full exploration and store the
    // true optimum.
    if (options_.cache_enabled && !timed_out) cache_.insert(canonical, design);
    SA_LOG_INFO << "cache " << (timed_out ? "skip (partial sweep)" : "miss")
                << ", explored " << result.stats.work_items
                << " work items, layer=" << request.layer.summary();
  }

  // Both paths re-derive the reported numbers from (request, design) with
  // the deterministic models, so a cached response is byte-identical to a
  // freshly explored one.
  const ResourceUsage resources =
      model_resources(nest, design, request.device, request.dtype);
  const double realized_freq = pseudo_pnr_frequency_mhz(
      request.device, resources.report, design.signature());
  const PerfEstimate realized = estimate_performance(
      nest, design, request.device, request.dtype, realized_freq);
  const double latency_ms = layer_latency_ms(request.layer, realized);

  if (timed_out) {
    counters_.timeouts.fetch_add(1);
    sm.timeouts.add(1);
    return finish(format_timeout_response(kTimeoutInDse, design, realized,
                                          resources.report, latency_ms));
  }
  counters_.ok.fetch_add(1);
  sm.ok.add(1);
  return finish(
      format_ok_response(design, realized, resources.report, latency_ms));
}

std::string SynthServer::handle_deploy(const std::string& request_block) {
  return handle_deploy(request_block, CancelToken());
}

std::string SynthServer::handle_deploy(const std::string& request_block,
                                       CancelToken cancel) {
  obs::ScopedSpan span("serve.handle_deploy", "serve");
  ServeMetrics& sm = ServeMetrics::get();
  counters_.requests.fetch_add(1);
  sm.requests.add(1);

  auto finish = [&](std::string response) {
    const std::int64_t us =
        static_cast<std::int64_t>(span.elapsed_seconds() * 1e6);
    counters_.wall_us_total.fetch_add(us);
    bump_max(counters_.wall_us_max, us);
    sm.request_ms.observe(static_cast<double>(us) * 1e-3);
    if (!cancel.deadline().unbounded()) {
      sm.deadline_slack_ms.observe(static_cast<double>(
          std::max<std::int64_t>(0, cancel.deadline().remaining_ms())));
    }
    return response;
  };

  const ParsedDeployRequest parsed = parse_deploy_request_block(request_block);
  if (!parsed.ok) {
    counters_.errors.fetch_add(1);
    sm.errors.add(1);
    return finish(format_error_response(parsed.error));
  }
  // Like handle(): the cancel token is execution policy, never key material.
  DeployRequest request = parsed.request;
  request.dse.cancel = cancel;

  // Resolve the network names (validated at parse time) into the workload.
  std::vector<deploy::WorkloadEntry> workload;
  workload.reserve(request.workload.size());
  std::vector<LoopNest> all_nests;
  for (const DeployWorkloadItem& item : request.workload) {
    deploy::WorkloadEntry entry;
    parse_network_name(item.network, &entry.net);
    entry.weight = item.weight;
    for (const ConvLayerDesc& layer : entry.net.layers) {
      all_nests.push_back(build_conv_nest(layer));
    }
    workload.push_back(std::move(entry));
  }
  // Cached fleet designs validate against the workload envelope: every
  // candidate was searched inside a source envelope whose trips the merged
  // envelope dominates, so the strict per-loop bound caps hold there too.
  const LoopNest env = unified_envelope_nest(all_nests);
  const std::string canonical = canonical_deploy_request_text(request);

  std::vector<DesignPoint> designs;
  bool have_fleet = options_.cache_enabled;
  if (have_fleet) {
    for (int i = 0; i < request.fleet_size; ++i) {
      DesignPoint design;
      if (!cache_.lookup(
              deploy_cache_entry_text(canonical, i, request.fleet_size), env,
              &design)) {
        have_fleet = false;
        break;
      }
      designs.push_back(std::move(design));
    }
  }
  if (have_fleet) {
    // All K hit: like handle(), a full cache hit answers `ok` even when the
    // token already fired — no selection work is left to cancel.
    SA_LOG_INFO << "deploy cache hit key="
                << strformat("%016llx", static_cast<unsigned long long>(
                                            fnv1a64(canonical)))
                << " fleet=" << request.fleet_size;
  } else {
    designs.clear();
    deploy::FleetOptions fleet_options;
    fleet_options.unified.dse = request.dse;
    fleet_options.num_designs = request.fleet_size;
    const deploy::FleetResult selected = deploy::select_fleet(
        workload, request.device, request.dtype, fleet_options);
    if (selected.cancelled) {
      // No partial payload: unlike a truncated sweep there is no meaningful
      // best-so-far fleet, and partial results are never cached.
      counters_.timeouts.fetch_add(1);
      sm.timeouts.add(1);
      return finish(format_timeout_response(kTimeoutInFleet));
    }
    if (!selected.valid) {
      counters_.errors.fetch_add(1);
      sm.errors.add(1);
      return finish(format_error_response(selected.error));
    }
    designs = selected.designs;
    // A fleet smaller than K (candidate pool ran out) is answered but not
    // cached: the lookup path expects exactly K derived entries.
    if (options_.cache_enabled &&
        static_cast<int>(designs.size()) == request.fleet_size) {
      for (int i = 0; i < request.fleet_size; ++i) {
        cache_.insert(
            deploy_cache_entry_text(canonical, i, request.fleet_size),
            designs[i]);
      }
    }
    SA_LOG_INFO << "deploy cache miss, selected fleet of " << designs.size()
                << " for " << workload.size() << " network(s)";
  }

  // Both paths answer through the pure evaluator, so a cached response is
  // byte-identical to a freshly selected one.
  const deploy::FleetResult evaluated =
      deploy::evaluate_fleet(workload, designs, request.device, request.dtype);
  if (!evaluated.valid) {
    counters_.errors.fetch_add(1);
    sm.errors.add(1);
    return finish(format_error_response(evaluated.error));
  }
  counters_.ok.fetch_add(1);
  sm.ok.add(1);
  return finish(format_deploy_ok_response(evaluated));
}

std::string SynthServer::handle_shard(const std::string& request_block) {
  return handle_shard(request_block, CancelToken());
}

std::string SynthServer::handle_shard(const std::string& request_block,
                                      CancelToken cancel) {
  obs::ScopedSpan span("serve.handle_shard", "serve");
  ServeMetrics& sm = ServeMetrics::get();
  counters_.requests.fetch_add(1);
  sm.requests.add(1);

  auto finish = [&](std::string response) {
    const std::int64_t us =
        static_cast<std::int64_t>(span.elapsed_seconds() * 1e6);
    counters_.wall_us_total.fetch_add(us);
    bump_max(counters_.wall_us_max, us);
    sm.request_ms.observe(static_cast<double>(us) * 1e-3);
    return response;
  };

  const ParsedShardRequest parsed = parse_shard_request_block(request_block);
  if (!parsed.ok) {
    counters_.errors.fetch_add(1);
    sm.errors.add(1);
    return finish(format_shard_error_response(parsed.error));
  }
  ServeRequest request = parsed.request.request;
  request.dse.cancel = cancel;
  // The worker's half of the one-logical-cache story: windowed sweeps read
  // and warm the same SweepCache ordinary requests use, so shard traffic and
  // direct traffic amortize each other's DFS work.
  if (options_.sweep_cache_capacity > 0) {
    request.dse.sweep_memo = &sweep_cache_;
  }
  // Relaxation is the coordinator's global decision (it pins min_util per
  // round); a worker must never relax its own window.
  request.dse.auto_relax_util = false;
  request.dse.shard_begin = parsed.request.item_begin;
  request.dse.shard_end = parsed.request.item_end;

  const LoopNest nest = build_conv_nest(request.layer);
  const DesignSpaceExplorer explorer(request.device, request.dtype,
                                     request.dse);
  ShardPartial partial;
  partial.ok = true;
  partial.total_items = explorer.count_phase1_items(nest);
  DseStats stats;
  std::vector<DseCandidate> candidates = explorer.enumerate_phase1(nest, &stats);
  if (candidates.size() > static_cast<std::size_t>(request.dse.top_k)) {
    candidates.resize(static_cast<std::size_t>(request.dse.top_k));
  }
  partial.work_items = stats.work_items;
  partial.cancelled = stats.cancelled;
  partial.designs.reserve(candidates.size());
  for (const DseCandidate& candidate : candidates) {
    partial.designs.push_back(candidate.design);
  }
  counters_.dse_runs.fetch_add(1);
  counters_.dse_work_items.fetch_add(stats.work_items);
  sm.dse_runs.add(1);
  sm.dse_work_items.add(stats.work_items);
  counters_.ok.fetch_add(1);
  sm.ok.add(1);
  return finish(format_shard_response(partial));
}

std::string SynthServer::stats_text() const {
  const DesignCacheStats cache = cache_.stats();
  std::string out = std::string(kStatsMagic) + "\n";
  auto line = [&out](const char* name, long long v) {
    out += strformat("%s %lld\n", name, v);
  };
  line("requests", counters_.requests.load());
  line("ok", counters_.ok.load());
  line("errors", counters_.errors.load());
  line("rejected", counters_.rejected.load());
  line("timeouts", counters_.timeouts.load());
  line("rejected_expired", counters_.rejected_expired.load());
  line("shed_expired", counters_.shed_expired.load());
  line("coalesced", counters_.coalesced.load());
  line("commands", counters_.commands.load());
  line("cache_hits", cache.hits);
  line("cache_misses", cache.misses);
  line("cache_disk_hits", cache.disk_hits);
  line("cache_load_failures", cache.load_failures);
  line("cache_insertions", cache.insertions);
  line("cache_evictions", cache.evictions);
  line("cache_disk_store_failures", cache.disk_store_failures);
  line("cache_entries", static_cast<long long>(cache_.size()));
  const SweepCacheStats sweep = sweep_cache_.stats();
  line("sweep_cache_exact_hits", sweep.exact_hits);
  line("sweep_cache_exact_misses", sweep.exact_misses);
  line("sweep_cache_hint_hits", sweep.hint_hits);
  line("sweep_cache_hint_misses", sweep.hint_misses);
  line("sweep_cache_insertions", sweep.insertions);
  line("sweep_cache_evictions", sweep.evictions);
  line("sweep_cache_entries", static_cast<long long>(sweep_cache_.size()));
  line("dse_runs", counters_.dse_runs.load());
  line("dse_work_items", counters_.dse_work_items.load());
  line("queue_depth_high_water", scheduler_.high_water());
  line("queue_limit", scheduler_.queue_limit());
  line("jobs", scheduler_.jobs());
  out += strformat("wall_ms_total %.3f\n",
                   static_cast<double>(counters_.wall_us_total.load()) / 1000.0);
  out += strformat("wall_ms_max %.3f\n",
                   static_cast<double>(counters_.wall_us_max.load()) / 1000.0);
  out += std::string(kBlockEnd) + "\n";
  return out;
}

std::string SynthServer::health_text() const {
  // No drain, no locks beyond the scheduler's own: a probe must get an
  // answer while the queue is jammed — that is the whole point of having a
  // second command next to `stats`. (Probes should use a dedicated
  // connection: responses are per-session ordered, so a probe sharing a
  // session with slow requests queues behind them.)
  const std::int64_t pending = scheduler_.pending();
  const std::int64_t limit = scheduler_.queue_limit();
  const std::int64_t uptime_s =
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::steady_clock::now() - start_)
          .count();
  std::string out = std::string(kHealthMagic) + "\n";
  out += strformat("status %s\n", draining_.load() ? "draining" : "ok");
  out += strformat("uptime_s %lld\n", static_cast<long long>(uptime_s));
  out += strformat("queue_depth %lld\n", static_cast<long long>(pending));
  out += strformat("queue_limit %lld\n", static_cast<long long>(limit));
  out += strformat("jobs %d\n", scheduler_.jobs());
  out += strformat("requests %lld\n",
                   static_cast<long long>(counters_.requests.load()));
  out += strformat("timeouts %lld\n",
                   static_cast<long long>(counters_.timeouts.load()));
  out += strformat("rejected %lld\n",
                   static_cast<long long>(counters_.rejected.load()));
  out += strformat("rejected_expired %lld\n",
                   static_cast<long long>(counters_.rejected_expired.load()));
  out += strformat("shed_expired %lld\n",
                   static_cast<long long>(counters_.shed_expired.load()));
  out += strformat("shedding %d\n", pending >= limit ? 1 : 0);
  if (const PeerHealthRegistry* health = shard_.health()) {
    // Per-peer breaker rows (peer_health.h): `peer<i>_<field> <value>`,
    // indexed in --peers order. The error text goes last on its line so it
    // may contain spaces; "-" means no error recorded.
    out += strformat("peers %lld\n", static_cast<long long>(health->size()));
    const std::vector<PeerHealthSnapshot> snaps =
        health->snapshot(PeerHealthRegistry::Clock::now());
    for (std::size_t i = 0; i < snaps.size(); ++i) {
      const PeerHealthSnapshot& s = snaps[i];
      out += strformat("peer%zu_addr %s\n", i, s.peer.c_str());
      out += strformat("peer%zu_state %s\n", i, peer_state_name(s.state));
      out += strformat("peer%zu_failures %d\n", i, s.consecutive_failures);
      out += strformat("peer%zu_breaker_opens %lld\n", i,
                       static_cast<long long>(s.breaker_opens));
      out += strformat("peer%zu_probes %lld\n", i,
                       static_cast<long long>(s.probes));
      out += strformat("peer%zu_last_probe_age_ms %lld\n", i,
                       static_cast<long long>(s.last_probe_age_ms));
      out += strformat("peer%zu_last_latency_us %lld\n", i,
                       static_cast<long long>(s.last_latency_us));
      out += strformat("peer%zu_last_error %s\n", i,
                       s.last_error.empty() ? "-" : s.last_error.c_str());
    }
  }
  out += std::string(kBlockEnd) + "\n";
  return out;
}

void SynthServer::begin_drain() {
  draining_.store(true);
  // The prober must not outlive the transports it probes through; draining
  // also means no new fan-outs, so re-admission bookkeeping is moot.
  shard_.stop_health_prober();
  SA_LOG_INFO << "server: drain requested, sessions stop reading";
}

void SynthServer::submit_session_block(std::string block, BlockKind kind,
                                       std::uint64_t seq, PostResponse post) {
  // Resolve the request's end-to-end budget up front: an explicit
  // deadline_ms wins, else --default-deadline, else unbounded. The block is
  // parsed a second time here (the handlers re-parse for purity); that cost
  // is noise next to a DSE or fleet selection. The same parse yields the
  // canonical text — the singleflight key, identical to the DesignCache key
  // material, so both dedup layers agree on what "the same request" means.
  const bool is_deploy = kind == BlockKind::kDeploy;
  std::int64_t budget_ms = -1;
  std::int64_t requested_ms = -1;
  bool peek_ok = false;
  std::string canonical;
  if (kind == BlockKind::kShard) {
    // No canonical text on purpose: a shard window is not a whole request,
    // so it must not coalesce with (or against) one.
    const ParsedShardRequest peek = parse_shard_request_block(block);
    peek_ok = peek.ok;
    requested_ms = peek.request.request.deadline_ms;
  } else if (is_deploy) {
    const ParsedDeployRequest peek = parse_deploy_request_block(block);
    peek_ok = peek.ok;
    requested_ms = peek.request.deadline_ms;
    if (peek.ok) canonical = canonical_deploy_request_text(peek.request);
  } else {
    const ParsedRequest peek = parse_request_block(block);
    peek_ok = peek.ok;
    requested_ms = peek.request.deadline_ms;
    if (peek.ok) canonical = canonical_request_text(peek.request);
  }
  if (peek_ok && requested_ms >= 0) {
    budget_ms = requested_ms;
  } else if (peek_ok && options_.default_deadline_ms > 0) {
    budget_ms = options_.default_deadline_ms;
  }

  const Deadline deadline =
      budget_ms >= 0 ? Deadline::after_ms(budget_ms) : Deadline();
  const CancelToken token = budget_ms >= 0
                                ? CancelToken::with_deadline(deadline)
                                : CancelToken();

  // Coalesce parseable requests only: a malformed block has no canonical
  // text, and its error response is cheap enough to not be worth sharing.
  // Shard windows never coalesce — see above.
  const bool coalescible = peek_ok && kind != BlockKind::kShard;
  if (coalescible) {
    const SingleFlight::Role role = singleflight_.join(
        canonical,
        [this, block, is_deploy, seq, token, post](
            const std::string& response, bool shared) {
          deliver_coalesced(block, is_deploy, seq, token, post, response,
                            shared);
        });
    if (role == SingleFlight::Role::kFollower) {
      // No scheduler slot, no DSE: the leader's completion answers this seq
      // (or tells us to answer ourselves). The follower's own token still
      // governs its verdict — see deliver_coalesced.
      counters_.coalesced.fetch_add(1);
      ServeMetrics::get().coalesced.add(1);
      return;
    }
  }

  const Admission admission = scheduler_.try_submit(
      [this, post, seq, token, kind, coalescible, canonical,
       block = std::move(block)](bool shed) {
        // Always post *something* for this seq: the ordered writer stalls
        // the whole session on a missing sequence number, so a throwing
        // handler degrades to an error response, not a hole.
        std::string response;
        if (shed) {
          // Expired while queued: answer without paying for the work.
          counters_.requests.fetch_add(1);
          counters_.timeouts.fetch_add(1);
          counters_.shed_expired.fetch_add(1);
          ServeMetrics::get().requests.add(1);
          ServeMetrics::get().timeouts.add(1);
          response = format_timeout_response(kTimeoutInQueue);
        } else {
          try {
            fault::raise_if_armed(fault::kSitePoolTask);
            response = kind == BlockKind::kDeploy ? handle_deploy(block, token)
                       : kind == BlockKind::kShard ? handle_shard(block, token)
                                                   : handle(block, token);
          } catch (const std::exception& e) {
            counters_.errors.fetch_add(1);
            ServeMetrics::get().errors.add(1);
            fault::note_degraded();
            response = format_error_response(std::string("internal error: ") +
                                             e.what());
          }
        }
        // The leader's own session gets its response before followers are
        // delivered: complete() may re-execute followers synchronously
        // (unshared path), and the leader must not wait behind them.
        post(seq, response);
        if (coalescible) {
          singleflight_.complete(canonical, response,
                                 response_is_shareable(response));
        }
      },
      deadline, token);
  if (admission == Admission::kQueueFull) {
    counters_.requests.fetch_add(1);
    counters_.rejected.fetch_add(1);
    ServeMetrics::get().requests.add(1);
    const std::string response = format_retry_response(
        strformat("admission queue full (%lld in flight), retry later",
                  static_cast<long long>(scheduler_.queue_limit())));
    post(seq, response);
    // Backpressure is shareable: the queue is full for every coalesced
    // session alike, and none of them held a slot.
    if (coalescible) singleflight_.complete(canonical, response, true);
  } else if (admission == Admission::kExpired) {
    // Dead on arrival (deadline_ms 0, or a queue-side client stall ate the
    // whole budget before the block finished framing).
    counters_.requests.fetch_add(1);
    counters_.timeouts.fetch_add(1);
    counters_.rejected_expired.fetch_add(1);
    ServeMetrics::get().requests.add(1);
    ServeMetrics::get().timeouts.add(1);
    post(seq, format_timeout_response(kTimeoutAtAdmission));
    // A timeout is the leader's verdict only — followers re-execute. That
    // re-execution is a full handle() per unshared follower, so the
    // completion must leave this thread: submit_session_block runs on the
    // event-loop thread (or a session reader), and completing inline here
    // would run every follower's DSE on it — stalling all sessions behind
    // one dead-on-arrival request. The follow-up is counted in pending(),
    // so drain() still covers the re-executions.
    if (coalescible) {
      scheduler_.submit_followup([this, canonical] {
        singleflight_.complete(canonical,
                               format_timeout_response(kTimeoutAtAdmission),
                               false);
      });
    }
  }
}

void SynthServer::deliver_coalesced(const std::string& block, bool is_deploy,
                                    std::uint64_t seq,
                                    const CancelToken& token,
                                    const PostResponse& post,
                                    const std::string& response, bool shared) {
  ServeMetrics& sm = ServeMetrics::get();
  if (shared) {
    if (token.cancelled()) {
      // The follower's own deadline fired while it waited on the leader: its
      // budget is the verdict that counts, never a late shared result. Same
      // accounting as queue-side shedding — the request died waiting.
      counters_.requests.fetch_add(1);
      counters_.timeouts.fetch_add(1);
      counters_.shed_expired.fetch_add(1);
      sm.requests.add(1);
      sm.timeouts.add(1);
      sm.shed_expired.add(1);
      post(seq, format_timeout_response(kTimeoutInQueue));
      return;
    }
    const std::string magic = std::string(kResponseMagic) + " ";
    counters_.requests.fetch_add(1);
    sm.requests.add(1);
    if (starts_with(response, magic + "ok")) {
      counters_.ok.fetch_add(1);
      sm.ok.add(1);
    } else if (starts_with(response, magic + "retry")) {
      counters_.rejected.fetch_add(1);
      sm.rejected.add(1);
    } else {
      counters_.errors.fetch_add(1);
      sm.errors.add(1);
    }
    post(seq, response);
    return;
  }
  // The leader's verdict was not shareable (its deadline fired). Answer this
  // session under its own token with a direct handle() call — not through
  // the scheduler, because this may run inside the leader's pool task and a
  // task must never submit to its own pool. The cost is bounded: the first
  // re-execution that completes populates the DesignCache for the rest.
  std::string own;
  try {
    own = is_deploy ? handle_deploy(block, token) : handle(block, token);
  } catch (const std::exception& e) {
    counters_.errors.fetch_add(1);
    sm.errors.add(1);
    fault::note_degraded();
    own = format_error_response(std::string("internal error: ") + e.what());
  }
  post(seq, std::move(own));
}

std::string SynthServer::handle_command(const std::string& command) {
  ServeMetrics& sm = ServeMetrics::get();
  if (command == "health") {
    counters_.commands.fetch_add(1);
    sm.commands.add(1);
    return health_text();  // never drains — see health_text()
  }
  if (command == "stats" || starts_with(command, "stats ")) {
    counters_.commands.fetch_add(1);
    sm.commands.add(1);
    scheduler_.drain();  // settle counters before reporting
    if (command == "stats") return stats_text();  // legacy sasynth-stats v1
    // stats --format=prom|json renders the process-global registry (every
    // instrumented subsystem, not just this server's counters). The
    // trailing `end` line is protocol framing, stripped by clients.
    const std::string arg = trim(command.substr(6));
    if (arg == "--format=prom") {
      return obs::MetricsRegistry::global().to_prom() + "end\n";
    }
    if (arg == "--format=json") {
      return obs::MetricsRegistry::global().to_json() + "end\n";
    }
    counters_.errors.fetch_add(1);
    sm.errors.add(1);
    return format_error_response("unknown stats argument '" + arg +
                                 "' (expected --format=prom|json)");
  }
  if (command == "ping") {
    counters_.commands.fetch_add(1);
    sm.commands.add(1);
    return "sasynth-pong v1\nend\n";
  }
  if (command == "shutdown") {
    counters_.commands.fetch_add(1);
    sm.commands.add(1);
    stop_.store(true);
    shard_.stop_health_prober();  // no transports survive a shutdown
    scheduler_.drain();  // graceful: finish accepted work first
    return "sasynth-bye v1\nend\n";
  }
  counters_.errors.fetch_add(1);
  sm.errors.add(1);
  return format_error_response("unknown command '" + command + "'");
}

void SynthServer::serve(const LineSource& read_line,
                        const ResponseSink& write_response) {
  std::mutex mutex;
  std::condition_variable ready_cv;
  std::map<std::uint64_t, std::string> ready;  ///< seq -> finished response
  std::uint64_t next_seq = 0;                  ///< session thread only
  std::uint64_t next_emit = 0;
  std::uint64_t posted = 0;  ///< responses received for this session's seqs
  bool done = false;

  // Every submitted seq posts exactly once (submit_session_block's
  // contract), and a coalesced follower may be posted from another session's
  // thread — so the session must not tear this frame down until the post
  // count catches up with next_seq (see the wait below scheduler_.drain()).
  auto post = [&](std::uint64_t seq, std::string response) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      ready.emplace(seq, std::move(response));
      ++posted;
    }
    ready_cv.notify_all();
  };

  // Sole writer: emits responses strictly in request order, as soon as each
  // one is ready (a session must not sit on a finished response while the
  // reader blocks on the next line).
  std::thread writer([&] {
    std::unique_lock<std::mutex> lock(mutex);
    for (;;) {
      ready_cv.wait(lock, [&] {
        return done ||
               (!ready.empty() && ready.begin()->first == next_emit);
      });
      while (!ready.empty()) {
        const auto it = ready.begin();  // smallest outstanding seq
        // Before `done`, wait for the exact next sequence number. After
        // `done` no response can still arrive, so flush whatever exists in
        // order even across a hole — every request task is expected to
        // post something, but a missing seq must degrade to a skipped
        // response, never to this loop spinning forever.
        if (it->first != next_emit && !done) break;
        next_emit = it->first + 1;
        std::string text = std::move(it->second);
        ready.erase(it);
        lock.unlock();
        {
          obs::ScopedSpan write_span("serve.session_write", "serve");
          write_span.arg("bytes", static_cast<std::int64_t>(text.size()));
          write_response(text);
        }
        lock.lock();
      }
      if (done && ready.empty()) return;
    }
  });

  std::string line;
  while (!stop_.load() && !draining_.load() && read_line(&line)) {
    const std::string command = trim(line);
    if (command.empty()) continue;

    if (command == kRequestMagic || command == kDeployRequestMagic ||
        command == kShardRequestMagic) {
      const BlockKind kind = command == kDeployRequestMagic
                                 ? BlockKind::kDeploy
                             : command == kShardRequestMagic
                                 ? BlockKind::kShard
                                 : BlockKind::kSynth;
      std::string block = command + "\n";
      while (read_line(&line)) {
        block += line + "\n";
        if (trim(line) == kBlockEnd) break;
      }
      submit_session_block(std::move(block), kind, next_seq++, post);
    } else {
      post(next_seq++, handle_command(command));
      if (command == "shutdown") break;
    }
  }

  scheduler_.drain();
  {
    // A coalesced follower's response arrives from its *leader's* thread,
    // which drain() does not always cover (the queue-full completion runs on
    // the leader's session thread; the expired-at-admission completion runs
    // as a pool follow-up). Wait for every submitted seq to have posted
    // before tearing down the frame `post` points into.
    std::unique_lock<std::mutex> lock(mutex);
    ready_cv.wait(lock, [&] { return posted == next_seq; });
    done = true;
  }
  ready_cv.notify_all();
  writer.join();
}

}  // namespace sasynth
