#include "serve/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace sasynth {

TcpListener::~TcpListener() { close_listener(); }

bool TcpListener::listen_on(int port, std::string* error) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    *error = std::string("bind: ") + std::strerror(errno);
    close_listener();
    return false;
  }
  if (::listen(fd_, 16) < 0) {
    *error = std::string("listen: ") + std::strerror(errno);
    close_listener();
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  return true;
}

int TcpListener::accept_client() {
  if (fd_ < 0) return -1;
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return client;
    if (errno == EINTR) continue;
    return -1;  // listener closed or fatal
  }
}

void TcpListener::close_listener() {
  if (fd_ >= 0) {
    // shutdown() unblocks a thread parked in accept() before close().
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

bool FdLineReader::read_line(std::string* out) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *out = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      *out = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      eof_ = true;
    } else if (n == 0) {
      eof_ = true;
    } else {
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }
}

bool write_all_fd(int fd, const std::string& data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void serve_fd_session(SynthServer& server, int fd) {
  FdLineReader reader(fd);
  server.serve([&reader](std::string* line) { return reader.read_line(line); },
               [fd](const std::string& response) {
                 (void)write_all_fd(fd, response);
               });
  ::close(fd);
}

}  // namespace sasynth
