#include "serve/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace sasynth {

namespace {

/// accept(2) failures the listener must ride out rather than die on:
/// resource pressure (fd/buffer exhaustion) or a connection that aborted
/// while parked in the backlog.
bool accept_errno_is_transient(int err) {
  return err == ECONNABORTED || err == EMFILE || err == ENFILE ||
         err == ENOBUFS || err == ENOMEM || err == EPROTO;
}

/// Transport-level timeout counter (docs/OBSERVABILITY.md): reads and
/// writes that gave up after --io-timeout.
obs::Counter& io_timeouts_counter() {
  static obs::Counter* c =
      &obs::MetricsRegistry::global().counter("io_timeouts_total");
  return *c;
}

enum class WaitResult { kReady, kTimeout, kAbort };

/// Parks in poll() until `fd` is ready for `events`, the deadline passes, or
/// `abort` turns true. ~250 ms ticks so the abort predicate is honored even
/// with no timeout configured. poll() errors other than EINTR report kReady
/// and let the actual read/send surface the errno.
WaitResult wait_fd(int fd, short events, const Deadline& deadline,
                   const std::function<bool()>& abort) {
  for (;;) {
    if (abort && abort()) return WaitResult::kAbort;
    if (deadline.expired()) return WaitResult::kTimeout;
    const int tick = static_cast<int>(std::max<std::int64_t>(
        1, std::min<std::int64_t>(250, deadline.remaining_ms())));
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int r = ::poll(&p, 1, tick);
    if (r > 0) return WaitResult::kReady;  // ready, or POLLHUP/POLLERR
    if (r < 0 && errno != EINTR) return WaitResult::kReady;
  }
}

}  // namespace

TcpListener::~TcpListener() { close_listener(); }

bool TcpListener::listen_on(int port, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno) + " (errno " +
             std::to_string(errno) + ")";
    return false;
  }
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    // Not fatal — the bind may still succeed — but never silent: without
    // REUSEADDR a quick daemon restart can spuriously fail with EADDRINUSE.
    SA_LOG_WARN << "setsockopt(SO_REUSEADDR): " << std::strerror(errno);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    // EADDRINUSE is the classic operator mistake (port already taken) — the
    // errno number rides along so the one-line fatal is grep-able.
    *error = std::string("bind 127.0.0.1:") + std::to_string(port) + ": " +
             std::strerror(errno) + " (errno " + std::to_string(errno) + ")";
    ::close(fd);
    return false;
  }
  // Full SOMAXCONN backlog: the event-loop daemon absorbs connection storms
  // (hundreds of simultaneous connects), and a short backlog turns the
  // overflow into kernel-level handshake resets that no server-side
  // backpressure policy ever sees. Admission control belongs to
  // --max-connections and the request queue, not the SYN queue.
  if (::listen(fd, SOMAXCONN) < 0) {
    *error = std::string("listen: ") + std::strerror(errno) + " (errno " +
             std::to_string(errno) + ")";
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  // Publish only a fully set-up listener; error paths never expose the fd.
  fd_.store(fd, std::memory_order_release);
  return true;
}

int TcpListener::accept_client() {
  static fault::Site& accept_site = fault::site(fault::kSiteTcpAccept);
  for (;;) {
    // Re-load each attempt: close_listener() from another thread swaps the
    // fd out atomically, and the retry paths below must observe that.
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0) return -1;
    int err;
    if (accept_site.fire() != fault::ErrorKind::kNone) {
      err = ECONNABORTED;  // every injected kind acts as a transient failure
    } else {
      const int client = ::accept(fd, nullptr, nullptr);
      if (client >= 0) return client;
      err = errno;
    }
    if (err == EINTR) continue;
    if (accept_errno_is_transient(err)) {
      SA_LOG_WARN << "accept: " << std::strerror(err) << ", retrying";
      fault::note_degraded();
      // Brief backoff: under fd exhaustion an immediate retry would spin
      // without giving any session a chance to release one.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    // EBADF/EINVAL is the normal close_listener() path; anything else gets
    // its errno into the log instead of a silent -1.
    if (err != EBADF && err != EINVAL) {
      SA_LOG_ERROR << "accept: " << std::strerror(err)
                   << ", stopping the accept loop";
    }
    return -1;
  }
}

void TcpListener::close_listener() {
  // exchange() makes close idempotent and race-free against a concurrent
  // accept_client: exactly one caller wins the fd and closes it.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // shutdown() unblocks a thread parked in accept() before close().
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

bool FdLineReader::read_line(std::string* out) {
  static fault::Site& read_site = fault::site(fault::kSiteTcpRead);
  // A timeout ends the stream exactly like a read error (buffered prefix
  // dropped, failed() true) plus the timed_out() mark and its counter.
  auto fail_timeout = [&] {
    SA_LOG_WARN << "session read timed out after " << timeout_ms_
                << " ms, dropping " << buffer_.size() << " buffered bytes";
    io_timeouts_counter().add(1);
    fault::note_degraded();
    failed_ = true;
    timed_out_ = true;
    eof_ = true;
    buffer_.clear();
    return false;
  };
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *out = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    if (eof_) {
      if (buffer_.empty()) return false;
      *out = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    char chunk[4096];
    std::size_t want = sizeof(chunk);
    ssize_t n;
    const fault::ErrorKind injected = read_site.fire();
    if (injected == fault::ErrorKind::kStall) {
      // A peer that went quiet mid-request. With a timeout configured this
      // is exactly the case the timer exists for — model it as the timer
      // having elapsed. Without one, stall for real (briefly) and proceed.
      if (timeout_ms_ > 0) return fail_timeout();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    switch (injected) {
      case fault::ErrorKind::kNone:
      case fault::ErrorKind::kStall: {
        if (timeout_ms_ > 0 || abort_) {
          const Deadline deadline = timeout_ms_ > 0
                                        ? Deadline::after_ms(timeout_ms_)
                                        : Deadline();
          switch (wait_fd(fd_, POLLIN, deadline, abort_)) {
            case WaitResult::kTimeout:
              return fail_timeout();
            case WaitResult::kAbort:
              // Server-initiated (drain/shutdown): a clean end of input, not
              // a transport failure — but a half-read request still must
              // not reach the parser.
              eof_ = true;
              buffer_.clear();
              return false;
            case WaitResult::kReady:
              break;
          }
        }
        n = ::read(fd_, chunk, want);
        break;
      }
      case fault::ErrorKind::kEintr:
        n = -1;
        errno = EINTR;
        break;
      case fault::ErrorKind::kShortRead:
        want = 1;  // the kernel is allowed to return any prefix
        n = ::read(fd_, chunk, want);
        break;
      default:  // epipe/corrupt/enospc/error: a fatal transport error
        n = -1;
        errno = EIO;
        break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      // Nonblocking fd raced poll() (or spurious wakeup): wait again.
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      // A read error is not EOF: whatever sits in the buffer is the prefix
      // of a request we never fully received. Delivering it as a complete
      // line would hand the parser a truncated request, so drop it and
      // report failure through failed().
      SA_LOG_WARN << "session read error: " << std::strerror(errno)
                  << ", dropping " << buffer_.size() << " buffered bytes";
      fault::note_degraded();
      failed_ = true;
      eof_ = true;
      buffer_.clear();
      return false;
    }
    if (n == 0) {
      eof_ = true;
    } else {
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }
}

bool write_all_fd(int fd, const std::string& data, std::int64_t timeout_ms) {
  static fault::Site& write_site = fault::site(fault::kSiteTcpWrite);
  std::size_t written = 0;
  while (written < data.size()) {
    std::size_t want = data.size() - written;
    const fault::ErrorKind injected = write_site.fire();
    if (injected == fault::ErrorKind::kEintr) continue;  // retryable, like EINTR
    if (injected == fault::ErrorKind::kShortRead) {
      want = 1;  // short write: the kernel took one byte
    } else if (injected == fault::ErrorKind::kStall) {
      // Peer stopped draining its receive buffer. Same modeling as the read
      // side: with a timeout it *is* the timeout; without one, a brief real
      // stall.
      if (timeout_ms > 0) {
        io_timeouts_counter().add(1);
        fault::note_degraded();
        errno = ETIMEDOUT;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    } else if (injected != fault::ErrorKind::kNone) {
      errno = EPIPE;  // epipe/error/...: the peer is gone
      return false;
    }
    if (timeout_ms > 0 &&
        wait_fd(fd, POLLOUT, Deadline::after_ms(timeout_ms), nullptr) ==
            WaitResult::kTimeout) {
      io_timeouts_counter().add(1);
      fault::note_degraded();
      errno = ETIMEDOUT;
      return false;
    }
    // send(MSG_NOSIGNAL) so a vanished peer surfaces as EPIPE on this call
    // instead of SIGPIPE killing the whole daemon; pipes and regular fds
    // (tests, stdio plumbing) are not sockets, so fall back to write(2)
    // for them — writes to broken pipes are covered by the SIG_IGN the
    // daemon installs at startup.
    ssize_t n = ::send(fd, data.data() + written, want, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data.data() + written, want);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // poll again
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

void serve_fd_session(SynthServer& server, int fd) {
  const std::int64_t io_timeout_ms = server.options().io_timeout_ms;
  if (io_timeout_ms > 0) {
    // Timed writes need a nonblocking fd: poll(POLLOUT) promises only *some*
    // send-buffer space, and a blocking send() of more than that would wedge
    // past the timeout. The read path polls before every read, so it never
    // sees a spurious EAGAIN it can't handle.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  FdLineReader reader(fd, io_timeout_ms, [&server] {
    return server.stop_requested() || server.draining();
  });
  std::atomic<bool> write_failed{false};
  server.serve(
      [&](std::string* line) {
        // After a failed write the peer cannot receive answers, so reading
        // further requests would only do work nobody collects.
        if (write_failed.load(std::memory_order_relaxed)) return false;
        return reader.read_line(line);
      },
      [fd, io_timeout_ms, &write_failed](const std::string& response) {
        if (write_failed.load(std::memory_order_relaxed)) return;
        if (!write_all_fd(fd, response, io_timeout_ms)) {
          // First failed write ends the session: no retries into a dead
          // peer, and shutdown() unblocks the session thread if it is
          // parked in read(2) waiting for the next request.
          SA_LOG_WARN << "session write failed (" << std::strerror(errno)
                      << "), ending session";
          fault::note_degraded();
          write_failed.store(true, std::memory_order_relaxed);
          ::shutdown(fd, SHUT_RDWR);
        }
      });
  ::close(fd);
}

}  // namespace sasynth
