#include "serve/protocol.h"

#include <cerrno>
#include <cstdlib>

#include "core/design_io.h"
#include "util/rng.h"
#include "util/strings.h"

namespace sasynth {

namespace {

// The strict conversions live in util/strings (parse_*_strict) so the CLI
// flag parsers share one posture with the wire protocol; these local names
// just keep the call sites short.
bool parse_int64(const std::string& token, std::int64_t* out) {
  return parse_int64_strict(token, out);
}

bool parse_double(const std::string& token, double* out) {
  return parse_double_strict(token, out);
}

bool parse_bool(const std::string& token, bool* out) {
  const std::string lower = to_lower(token);
  if (lower == "1" || lower == "true" || lower == "on") {
    *out = true;
    return true;
  }
  if (lower == "0" || lower == "false" || lower == "off") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

std::string apply_dse_option(DseOptions* dse_out, const std::string& key,
                             const std::string& value) {
  DseOptions& dse = *dse_out;
  auto want_double = [&](double* out, double lo, double hi) -> std::string {
    double v = 0.0;
    if (!parse_double(value, &v) || v < lo || v > hi) {
      return "option " + key + ": bad value '" + value + "'";
    }
    *out = v;
    return "";
  };
  auto want_int = [&](std::int64_t lo, std::int64_t hi,
                      auto setter) -> std::string {
    std::int64_t v = 0;
    if (!parse_int64(value, &v) || v < lo || v > hi) {
      return "option " + key + ": bad value '" + value + "'";
    }
    setter(v);
    return "";
  };
  auto want_bool = [&](bool* out) -> std::string {
    if (!parse_bool(value, out)) {
      return "option " + key + ": bad value '" + value +
             "' (expected 0/1/on/off/true/false)";
    }
    return "";
  };

  if (key == "freq") return want_double(&dse.assumed_freq_mhz, 1.0, 10000.0);
  if (key == "min_util") return want_double(&dse.min_dsp_util, 0.0, 1.0);
  if (key == "max_bram_util") return want_double(&dse.max_bram_util, 0.0, 100.0);
  if (key == "top_k") {
    return want_int(1, 1 << 20, [&](std::int64_t v) {
      dse.top_k = static_cast<int>(v);
    });
  }
  if (key == "max_rows") {
    return want_int(1, 1 << 20, [&](std::int64_t v) { dse.max_rows = v; });
  }
  if (key == "max_cols") {
    return want_int(1, 1 << 20, [&](std::int64_t v) { dse.max_cols = v; });
  }
  if (key == "max_vec") {
    return want_int(1, 1 << 20, [&](std::int64_t v) { dse.max_vec = v; });
  }
  if (key == "jobs") {
    return want_int(0, 1024, [&](std::int64_t v) {
      dse.jobs = static_cast<int>(v);
    });
  }
  if (key == "pow2_middle") return want_bool(&dse.pow2_middle);
  if (key == "pow2_vec") return want_bool(&dse.pow2_vec_only);
  if (key == "soft_logic") return want_bool(&dse.enforce_soft_logic);
  if (key == "auto_relax") return want_bool(&dse.auto_relax_util);
  if (key == "bound_prune") return want_bool(&dse.bound_prune);
  return "unknown option '" + key + "'";
}

ServeRequest::ServeRequest() : device(arria10_gt1150()) {
  // Serving default: one thread per request — the server parallelizes across
  // requests, so a nested per-request sweep would only oversubscribe.
  dse.jobs = 1;
}

bool parse_layer_fields(const std::string& spec, ConvLayerDesc* out,
                        std::string* error) {
  const std::vector<std::string> parts = split(spec, ',');
  if (parts.size() < 5 || parts.size() > 7) {
    *error = "layer expects I,O,R,C,K[,stride[,groups]]";
    return false;
  }
  std::vector<std::int64_t> values;
  for (const std::string& part : parts) {
    std::int64_t v = 0;
    if (!parse_int64(trim(part), &v) || v < 1) {
      *error = "layer field '" + part + "' is not a positive integer";
      return false;
    }
    values.push_back(v);
  }
  *out = make_conv("request_layer", values[0], values[1], values[2], values[4],
                   parts.size() >= 6 ? values[5] : 1,
                   parts.size() >= 7 ? values[6] : 1);
  out->out_cols = values[3];
  const std::string validation = out->validate();
  if (!validation.empty()) {
    *error = "invalid layer: " + validation;
    return false;
  }
  return true;
}

ParsedRequest parse_request_block(const std::string& block) {
  ParsedRequest result;
  auto fail = [&](const std::string& msg) {
    result.error = msg;
    return result;
  };

  const std::vector<std::string> lines = split(block, '\n');
  std::size_t i = 0;
  auto next_line = [&]() -> std::string {
    while (i < lines.size()) {
      const std::string line = trim(lines[i++]);
      if (!line.empty()) return line;
    }
    return "";
  };

  if (next_line() != kRequestMagic) {
    return fail(std::string("missing '") + kRequestMagic + "' header");
  }

  bool have_layer = false;
  bool have_deadline = false;
  for (std::string line = next_line(); !line.empty() && line != kBlockEnd;
       line = next_line()) {
    const std::vector<std::string> parts = split_ws(line);
    const std::string& field = parts[0];
    if (field == "layer") {
      if (parts.size() != 2) return fail("layer expects one value");
      std::string error;
      if (!parse_layer_fields(parts[1], &result.request.layer, &error)) {
        return fail(error);
      }
      have_layer = true;
    } else if (field == "device") {
      if (parts.size() != 2 ||
          !parse_device_name(parts[1], &result.request.device)) {
        return fail("unknown device (expected " +
                    std::string(device_name_list()) + ")");
      }
    } else if (field == "dtype") {
      if (parts.size() != 2 ||
          !parse_data_type(parts[1], &result.request.dtype)) {
        return fail("unknown dtype (expected float32|fixed8_16)");
      }
    } else if (field == "option") {
      if (parts.size() != 3) return fail("option expects <key> <value>");
      const std::string error =
          apply_dse_option(&result.request.dse, parts[1], parts[2]);
      if (!error.empty()) return fail(error);
    } else if (field == "deadline_ms") {
      // Strict by design: a garbled deadline silently treated as "none"
      // would turn a client's 50 ms budget into an unbounded request.
      if (have_deadline) return fail("duplicate deadline_ms field");
      std::int64_t ms = 0;
      if (parts.size() != 2 || !parse_int64(parts[1], &ms)) {
        return fail("deadline_ms expects one integer value (milliseconds)");
      }
      if (ms < 0) return fail("deadline_ms must be >= 0");
      result.request.deadline_ms = ms;
      have_deadline = true;
    } else {
      return fail("unknown request field '" + field + "'");
    }
  }
  if (!have_layer) return fail("request has no layer line");
  result.ok = true;
  return result;
}

std::string canonical_dse_options_text(const DseOptions& d) {
  std::string out;
  out += strformat("freq %.17g\n", d.assumed_freq_mhz);
  out += strformat("min_util %.17g\n", d.min_dsp_util);
  out += strformat("pow2_middle %d\n", d.pow2_middle ? 1 : 0);
  out += strformat("top_k %d\n", d.top_k);
  out += strformat("max_rows %lld\n", static_cast<long long>(d.max_rows));
  out += strformat("max_cols %lld\n", static_cast<long long>(d.max_cols));
  out += strformat("max_vec %lld\n", static_cast<long long>(d.max_vec));
  out += strformat("pow2_vec %d\n", d.pow2_vec_only ? 1 : 0);
  out += strformat("max_bram_util %.17g\n", d.max_bram_util);
  out += strformat("soft_logic %d\n", d.enforce_soft_logic ? 1 : 0);
  out += strformat("auto_relax %d\n", d.auto_relax_util ? 1 : 0);
  // In the key even though the final top-K is provably identical either way:
  // a deadline-truncated sweep's best-so-far partial is not, and a cache must
  // never conflate two requests whose failure payloads can differ.
  out += strformat("bound_prune %d\n", d.bound_prune ? 1 : 0);
  return out;
}

std::string canonical_request_text(const ServeRequest& request) {
  const ConvLayerDesc& l = request.layer;
  std::string out;
  out += strformat("layer %lld,%lld,%lld,%lld,%lld,%lld,%lld\n",
                   static_cast<long long>(l.in_maps),
                   static_cast<long long>(l.out_maps),
                   static_cast<long long>(l.out_rows),
                   static_cast<long long>(l.out_cols),
                   static_cast<long long>(l.kernel),
                   static_cast<long long>(l.stride),
                   static_cast<long long>(l.groups));
  out += "device " + request.device.name + "\n";
  out += "dtype " + data_type_name(request.dtype) + "\n";
  out += canonical_dse_options_text(request.dse);
  return out;
}

std::uint64_t request_cache_key(const ServeRequest& request) {
  return fnv1a64(canonical_request_text(request));
}

std::string format_ok_response(const DesignPoint& design,
                               const PerfEstimate& realized,
                               const ResourceReport& resources,
                               double latency_ms) {
  std::string out = std::string(kResponseMagic) + " ok\n";
  out += save_design_text(design);
  out += strformat(
      "perf freq_mhz=%.6f throughput_gops=%.6f latency_ms=%.6f "
      "memory_bound=%d\n",
      realized.freq_mhz, realized.throughput_gops, latency_ms,
      realized.memory_bound ? 1 : 0);
  out += strformat(
      "resource dsp=%lld bram=%lld luts=%lld ffs=%lld dsp_util=%.6f "
      "bram_util=%.6f logic_util=%.6f\n",
      static_cast<long long>(resources.dsp_blocks),
      static_cast<long long>(resources.bram_blocks),
      static_cast<long long>(resources.luts),
      static_cast<long long>(resources.ffs), resources.dsp_util,
      resources.bram_util, resources.logic_util);
  out += std::string(kBlockEnd) + "\n";
  return out;
}

std::string format_error_response(const std::string& message) {
  return std::string(kResponseMagic) + " error " + message + "\n" +
         kBlockEnd + "\n";
}

std::string format_retry_response(const std::string& message) {
  return std::string(kResponseMagic) + " retry " + message + "\n" + kBlockEnd +
         "\n";
}

std::string format_timeout_response(const std::string& message) {
  return std::string(kResponseMagic) + " timeout " + message + "\n" +
         kBlockEnd + "\n";
}

std::string format_timeout_response(const std::string& message,
                                    const DesignPoint& design,
                                    const PerfEstimate& realized,
                                    const ResourceReport& resources,
                                    double latency_ms) {
  // Verdict line + the exact ok-payload layout: the full-response formatter
  // already ends with "end\n", so splice its body after the timeout verdict.
  const std::string body =
      format_ok_response(design, realized, resources, latency_ms);
  const std::size_t first_newline = body.find('\n');
  return std::string(kResponseMagic) + " timeout " + message + "\n" +
         body.substr(first_newline + 1);
}

}  // namespace sasynth
