// Per-peer lifecycle tracking for the shard fleet: circuit breakers with a
// deterministic exponential backoff schedule, a background health prober,
// and last-error/latency bookkeeping — the memory the PR-9 coordinator was
// missing. Without it a dead peer cost every request a full connect/read
// stall before degrading, and a recovered peer was never deliberately
// re-admitted.
//
// The state machine per peer:
//
//            N consecutive failures
//   closed ──────────────────────────▶ open
//     ▲                                 │ background `ping` probe succeeds
//     │ one request-probe succeeds      ▼ (fault site shard.probe)
//     └──────────────────────────── half-open
//
//   * closed    — healthy; every request fans out to the peer normally.
//   * open      — the breaker tripped: the coordinator skips the doomed
//                 connect entirely and re-executes the peer's range locally,
//                 so a dead peer costs the fleet one timeout total, not one
//                 per request. The background prober pings the peer off the
//                 request path on the backoff schedule.
//   * half-open — the prober got a pong; the peer is *probably* back. The
//                 next shard request to it is admitted as a single-flight
//                 probe (exactly one in flight — a second concurrent request
//                 still takes the local fallback). Success closes the
//                 breaker (re-admission); failure re-opens it with the next
//                 backoff step.
//
// Backoff is deterministic, never randomized: after the k-th consecutive
// failed probe cycle the next background probe waits
// backoff_ms(opts, k) = min(probe_interval_ms << k, probe_interval_ms * 16)
// milliseconds. The same failure history always yields the same schedule,
// which is what makes the chaos tests' re-admission bound assertable.
//
// Determinism contract (the PR-1/5/9 invariant): the registry only ever
// decides *where* a range executes — peer RPC or local re-execution — never
// which candidates a range yields. The windowed enumeration is identical on
// both paths, so responses stay byte-identical to single-node at any peer
// state or flap pattern.
//
// Observability (docs/OBSERVABILITY.md): `shard_peer_state_p<i>` gauges
// (0 = closed, 1 = half-open, 2 = open, indexed in --peers order),
// `shard_breaker_opens_total`, `shard_probes_total`, and per-peer rows in
// the `health` command.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace sasynth {

enum class PeerState { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

/// "closed" / "half_open" / "open" — the spelling used by the `health`
/// command rows and the chaos smoke script.
const char* peer_state_name(PeerState state);

struct PeerHealthOptions {
  /// Consecutive request-path failures that trip the breaker closed -> open.
  int failure_threshold = 3;
  /// Base backoff step and prober cadence, milliseconds. 0 disables the
  /// background prober entirely: breakers still open, but an open peer is
  /// only re-admitted by an operator restart — probe_due_peers() can still
  /// be driven manually (tests do).
  std::int64_t probe_interval_ms = 1000;
  /// Per-probe I/O bound (connect + ping + pong), milliseconds. Also caps
  /// how long stop_prober() can block behind a stalled probe.
  std::int64_t probe_timeout_ms = 2000;
};

/// One peer's publicly visible health, for `health` rows and tests.
struct PeerHealthSnapshot {
  std::string peer;               ///< "host:port" as configured
  PeerState state = PeerState::kClosed;
  int consecutive_failures = 0;   ///< request-path failures since last success
  std::int64_t breaker_opens = 0; ///< closed/half-open -> open transitions
  std::int64_t probes = 0;        ///< background pings attempted
  std::string last_error;         ///< most recent failure text; "" = none
  std::int64_t last_probe_age_ms = -1;  ///< ms since last background ping; -1 = never
  std::int64_t next_probe_in_ms = -1;   ///< ms until next scheduled ping; -1 = none
  std::int64_t last_latency_us = -1;    ///< last successful RPC round-trip; -1 = none
};

/// Splits "host:port" and validates both halves (numeric IPv4 or
/// "localhost" — no DNS, a resolver stall inside a request would be an
/// unbounded hidden timeout). Returns an error message or "".
std::string split_peer_host_port(const std::string& peer, std::string* host,
                                 int* port);

/// Bounded TCP connect to "host:port": non-blocking connect + poll(POLLOUT),
/// then the fd is restored to blocking (FdLineReader / write_all_fd bound
/// the subsequent I/O). Returns -1 with a message in `error`. Fires no fault
/// site — callers own their site (shard.connect on the request path,
/// shard.probe on the prober).
int connect_peer_fd(const std::string& peer, std::int64_t timeout_ms,
                    std::string* error);

/// One health probe: connect, send `ping`, expect `sasynth-pong v1`, all
/// bounded by `timeout_ms`. Fires the shard.probe fault site (any injected
/// kind fails the probe; the peer stays open until a later clean probe).
bool probe_peer_ping(const std::string& peer, std::int64_t timeout_ms,
                     std::string* error);

/// The shared per-peer lifecycle registry. All methods are thread-safe; the
/// coordinator consults admit() before every fan-out and reports every RPC
/// outcome (including hedge losers — a slow-but-alive peer that eventually
/// answers keeps its breaker closed), while the background prober owns the
/// open -> half-open transition off the request path.
///
/// Time is passed in explicitly (steady_clock) so the state machine is a
/// pure function of (event sequence, timestamps) — tests drive it with
/// synthetic clocks and assert the exact backoff schedule.
class PeerHealthRegistry {
 public:
  using Clock = std::chrono::steady_clock;

  PeerHealthRegistry(std::vector<std::string> peers, PeerHealthOptions opts);
  ~PeerHealthRegistry();  ///< stop_prober()

  PeerHealthRegistry(const PeerHealthRegistry&) = delete;
  PeerHealthRegistry& operator=(const PeerHealthRegistry&) = delete;

  /// What the coordinator may do with a range owned by this peer.
  enum class Admit {
    kSend,   ///< closed: normal RPC
    kProbe,  ///< half-open: this request carries the (single) probe RPC
    kSkip,   ///< open, or half-open with a probe already in flight: go
             ///< straight to the local_window fallback
  };

  /// Consult before dispatching peer `i`'s range. A kProbe ticket claims the
  /// half-open probe slot; the caller MUST report the outcome through
  /// on_success/on_failure with was_probe = true to release it.
  Admit admit(std::size_t peer, Clock::time_point now);

  /// A peer RPC produced a usable partial. Closes the breaker from any
  /// state (re-admission when it was not closed), resets the failure count
  /// and the backoff schedule.
  void on_success(std::size_t peer, bool was_probe, std::int64_t latency_us,
                  Clock::time_point now);

  /// A peer RPC failed (transport error, malformed partial, item-count
  /// mismatch). In closed state counts toward the threshold; a failed probe
  /// re-opens with the next backoff step. Failures reported while already
  /// open (late hedge losers) only refresh the error bookkeeping.
  void on_failure(std::size_t peer, bool was_probe, const std::string& error,
                  Clock::time_point now);

  /// The prober's transition: a background ping result for an open peer.
  /// ok moves it to half-open; failure schedules the next ping one backoff
  /// step later. Public so tests can drive the machine without sockets.
  void record_probe_result(std::size_t peer, bool ok, const std::string& error,
                           Clock::time_point now);

  /// Pings every open peer whose backoff expired at `now` (off the request
  /// path; one sequential pass). Returns the number of probes attempted.
  /// The prober thread calls this; tests may call it directly.
  int probe_due_peers(Clock::time_point now);

  /// The deterministic backoff schedule: min(interval << round,
  /// interval * 16), clamped to at least 1 ms. Exposed for tests and docs.
  static std::int64_t backoff_ms(const PeerHealthOptions& opts,
                                 std::int64_t round);

  /// Spawns the background prober thread (no-op when probe_interval_ms == 0
  /// or there are no peers). stop_prober() is idempotent and joins; the
  /// server calls it at drain/shutdown so the prober never outlives the
  /// transports.
  void start_prober();
  void stop_prober();

  std::size_t size() const;  ///< configured peer count
  std::vector<PeerHealthSnapshot> snapshot(Clock::time_point now) const;

 private:
  struct Peer;

  void to_open(Peer& peer, Clock::time_point now);  ///< locked
  void prober_loop();

  const PeerHealthOptions opts_;
  mutable std::mutex mutex_;
  std::vector<Peer> peers_;

  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;
};

}  // namespace sasynth
