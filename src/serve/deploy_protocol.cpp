#include "serve/deploy_protocol.h"

#include <cerrno>
#include <cstdlib>

#include "core/design_io.h"
#include "nn/network.h"
#include "serve/protocol.h"
#include "util/strings.h"

namespace sasynth {

namespace {

bool parse_int64(const std::string& token, std::int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool parse_double(const std::string& token, double* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

}  // namespace

DeployRequest::DeployRequest() : device(arria10_gt1150()) {
  // Serving default, matching ServeRequest: one thread per request.
  dse.jobs = 1;
}

ParsedDeployRequest parse_deploy_request_block(const std::string& block) {
  ParsedDeployRequest result;
  auto fail = [&](const std::string& msg) {
    result.error = msg;
    return result;
  };

  const std::vector<std::string> lines = split(block, '\n');
  std::size_t i = 0;
  auto next_line = [&]() -> std::string {
    while (i < lines.size()) {
      const std::string line = trim(lines[i++]);
      if (!line.empty()) return line;
    }
    return "";
  };

  if (next_line() != kDeployRequestMagic) {
    return fail(std::string("missing '") + kDeployRequestMagic + "' header");
  }

  bool have_fleet = false;
  bool have_deadline = false;
  for (std::string line = next_line(); !line.empty() && line != kBlockEnd;
       line = next_line()) {
    const std::vector<std::string> parts = split_ws(line);
    const std::string& field = parts[0];
    if (field == "network") {
      if (parts.size() < 2 || parts.size() > 3) {
        return fail("network expects <name> [weight]");
      }
      Network probe;
      if (!parse_network_name(parts[1], &probe)) {
        return fail("unknown network '" + parts[1] + "' (expected " +
                    std::string(network_name_list()) + ")");
      }
      DeployWorkloadItem item;
      item.network = parts[1];
      if (parts.size() == 3) {
        if (!parse_double(parts[2], &item.weight) || !(item.weight > 0.0)) {
          return fail("network weight '" + parts[2] +
                      "' is not a positive number");
        }
      }
      result.request.workload.push_back(std::move(item));
    } else if (field == "fleet") {
      if (have_fleet) return fail("duplicate fleet field");
      std::int64_t k = 0;
      if (parts.size() != 2 || !parse_int64(parts[1], &k) || k < 1 ||
          k > 64) {
        return fail("fleet expects one integer in [1, 64]");
      }
      result.request.fleet_size = static_cast<int>(k);
      have_fleet = true;
    } else if (field == "device") {
      if (parts.size() != 2 ||
          !parse_device_name(parts[1], &result.request.device)) {
        return fail("unknown device (expected " +
                    std::string(device_name_list()) + ")");
      }
    } else if (field == "dtype") {
      if (parts.size() != 2 ||
          !parse_data_type(parts[1], &result.request.dtype)) {
        return fail("unknown dtype (expected float32|fixed8_16)");
      }
    } else if (field == "option") {
      if (parts.size() != 3) return fail("option expects <key> <value>");
      const std::string error =
          apply_dse_option(&result.request.dse, parts[1], parts[2]);
      if (!error.empty()) return fail(error);
    } else if (field == "deadline_ms") {
      if (have_deadline) return fail("duplicate deadline_ms field");
      std::int64_t ms = 0;
      if (parts.size() != 2 || !parse_int64(parts[1], &ms)) {
        return fail("deadline_ms expects one integer value (milliseconds)");
      }
      if (ms < 0) return fail("deadline_ms must be >= 0");
      result.request.deadline_ms = ms;
      have_deadline = true;
    } else {
      return fail("unknown deploy field '" + field + "'");
    }
  }
  if (result.request.workload.empty()) {
    return fail("deploy request has no network line");
  }
  result.ok = true;
  return result;
}

std::string canonical_deploy_request_text(const DeployRequest& request) {
  std::string out = "deploy\n";
  for (const DeployWorkloadItem& item : request.workload) {
    out += strformat("network %s %.17g\n", item.network.c_str(), item.weight);
  }
  out += strformat("fleet %d\n", request.fleet_size);
  out += "device " + request.device.name + "\n";
  out += "dtype " + data_type_name(request.dtype) + "\n";
  out += canonical_dse_options_text(request.dse);
  return out;
}

std::string deploy_cache_entry_text(const std::string& canonical, int index,
                                    int fleet_size) {
  return canonical + strformat("fleet_design %d/%d\n", index, fleet_size);
}

std::string format_deploy_ok_response(const deploy::FleetResult& result) {
  std::string out = std::string(kResponseMagic) + " ok\n";
  out += strformat("fleet %zu weighted_latency_ms=%.6f weighted_gops=%.6f\n",
                   result.designs.size(), result.weighted_latency_ms,
                   result.weighted_gops);
  for (std::size_t d = 0; d < result.designs.size(); ++d) {
    out += strformat("design %zu freq_mhz=%.6f\n", d,
                     result.realized_freq_mhz[d]);
    out += save_design_text(result.designs[d]);
  }
  for (const deploy::NetworkPlan& plan : result.plans) {
    out += strformat(
        "assign %s weight=%.17g design=%zu latency_ms=%.6f gops=%.6f\n",
        plan.network.c_str(), plan.weight, plan.design_index, plan.latency_ms,
        plan.aggregate_gops);
  }
  out += std::string(kBlockEnd) + "\n";
  return out;
}

}  // namespace sasynth
