#include "serve/shard.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "core/design_io.h"
#include "core/perf_model.h"
#include "core/resource_model.h"
#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/tcp.h"
#include "util/logging.h"
#include "util/strings.h"

namespace sasynth {

namespace {

bool parse_int64(const std::string& token, std::int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

/// Process-global shard instrumentation (docs/OBSERVABILITY.md).
struct ShardMetrics {
  obs::Counter& requests;        ///< peer RPCs issued
  obs::Counter& degraded;        ///< ranges re-executed locally
  obs::Counter& hedges;          ///< local re-executions started on slow RPCs
  obs::Counter& hedge_wins;      ///< hedged ranges answered by the local copy
  obs::Histogram& peer_latency_ms;  ///< successful RPC round-trip

  static ShardMetrics& get() {
    static ShardMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new ShardMetrics{
          r.counter("shard_requests_total"),
          r.counter("shard_degraded_total"),
          r.counter("shard_hedges_total"),
          r.counter("shard_hedge_wins_total"),
          r.histogram("shard_peer_latency_ms"),
      };
    }();
    return *m;
  }
};

/// The stable-merge order of the phase-1 candidate sort (dse.cpp): higher
/// estimated throughput first, fewer BRAM blocks on ties. Strictly-better
/// only — equal keys are resolved by the caller's range scan order, which is
/// item order, matching the in-process stable_sort.
bool strictly_better(const DseCandidate& a, const DseCandidate& b) {
  if (a.estimated_gops() != b.estimated_gops()) {
    return a.estimated_gops() > b.estimated_gops();
  }
  return a.resources.bram_blocks < b.resources.bram_blocks;
}

}  // namespace

std::string parse_peer_list(const std::string& spec,
                            std::vector<std::string>* out) {
  for (const std::string& raw : split(spec, ',')) {
    const std::string peer = trim(raw);
    if (peer.empty()) {
      return "empty peer in list '" + spec + "'";
    }
    std::string host;
    int port = 0;
    const std::string error = split_peer_host_port(peer, &host, &port);
    if (!error.empty()) return error;
    out->push_back(peer);
  }
  if (out->empty()) return "empty peer list";
  return "";
}

std::string format_shard_request_block(const ServeRequest& request,
                                       std::int64_t item_begin,
                                       std::int64_t item_end,
                                       std::int64_t deadline_ms) {
  std::string out = std::string(kShardRequestMagic) + "\n";
  out += strformat("shard_items %lld %lld\n",
                   static_cast<long long>(item_begin),
                   static_cast<long long>(item_end));
  const ConvLayerDesc& l = request.layer;
  out += strformat("layer %lld,%lld,%lld,%lld,%lld,%lld,%lld\n",
                   static_cast<long long>(l.in_maps),
                   static_cast<long long>(l.out_maps),
                   static_cast<long long>(l.out_rows),
                   static_cast<long long>(l.out_cols),
                   static_cast<long long>(l.kernel),
                   static_cast<long long>(l.stride),
                   static_cast<long long>(l.groups));
  // device.name is the display name ("Arria10 GT1150"); the wire needs the
  // protocol token the worker's parser accepts.
  out += "device " + std::string(device_flag_name(request.device)) + "\n";
  out += "dtype " + data_type_name(request.dtype) + "\n";
  // Reuse the canonical option rendering verbatim (one "option " prefix per
  // line), so the shard wire cannot drift from the request canonicalization.
  for (const std::string& line :
       split(canonical_dse_options_text(request.dse), '\n')) {
    if (!line.empty()) out += "option " + line + "\n";
  }
  if (deadline_ms >= 0) {
    out += strformat("deadline_ms %lld\n", static_cast<long long>(deadline_ms));
  }
  out += std::string(kBlockEnd) + "\n";
  return out;
}

ParsedShardRequest parse_shard_request_block(const std::string& block) {
  ParsedShardRequest result;
  auto fail = [&](const std::string& msg) {
    result.error = msg;
    return result;
  };

  const std::vector<std::string> lines = split(block, '\n');
  std::size_t i = 0;
  auto next_line = [&]() -> std::string {
    while (i < lines.size()) {
      const std::string line = trim(lines[i++]);
      if (!line.empty()) return line;
    }
    return "";
  };

  if (next_line() != kShardRequestMagic) {
    return fail(std::string("missing '") + kShardRequestMagic + "' header");
  }

  bool have_items = false;
  std::string inner = std::string(kRequestMagic) + "\n";
  for (std::string line = next_line(); !line.empty() && line != kBlockEnd;
       line = next_line()) {
    const std::vector<std::string> parts = split_ws(line);
    if (parts[0] == "shard_items") {
      // Strict like deadline_ms: a garbled window silently defaulted would
      // make the worker sweep the wrong (or the whole) item range.
      if (have_items) return fail("duplicate shard_items field");
      std::int64_t begin = 0;
      std::int64_t end = 0;
      if (parts.size() != 3 || !parse_int64(parts[1], &begin) ||
          !parse_int64(parts[2], &end)) {
        return fail("shard_items expects two integer values (begin end)");
      }
      if (begin < 0 || end < begin) {
        return fail("shard_items window must satisfy 0 <= begin <= end");
      }
      result.request.item_begin = begin;
      result.request.item_end = end;
      have_items = true;
    } else {
      inner += line + "\n";
    }
  }
  if (!have_items) return fail("shard block has no shard_items line");
  inner += std::string(kBlockEnd) + "\n";

  const ParsedRequest parsed = parse_request_block(inner);
  if (!parsed.ok) return fail(parsed.error);
  result.request.request = parsed.request;
  result.ok = true;
  return result;
}

std::string format_shard_response(const ShardPartial& partial) {
  std::string out = std::string(kShardResponseMagic) + " ok\n";
  out += strformat("items %lld\n", static_cast<long long>(partial.total_items));
  out += strformat("cancelled %d\n", partial.cancelled ? 1 : 0);
  out += strformat("work_items %lld\n",
                   static_cast<long long>(partial.work_items));
  out += strformat("candidates %lld\n",
                   static_cast<long long>(partial.designs.size()));
  for (const DesignPoint& design : partial.designs) {
    out += save_design_text(design);
  }
  out += std::string(kBlockEnd) + "\n";
  return out;
}

std::string format_shard_error_response(const std::string& message) {
  return std::string(kShardResponseMagic) + " error " + message + "\n" +
         kBlockEnd + "\n";
}

ShardPartial parse_shard_response(const std::string& text,
                                  const LoopNest& nest) {
  ShardPartial result;
  auto fail = [&](const std::string& msg) {
    result.ok = false;
    result.error = msg;
    return result;
  };

  const std::vector<std::string> lines = split(text, '\n');
  std::size_t i = 0;
  auto next_line = [&]() -> std::string {
    while (i < lines.size()) {
      const std::string line = trim(lines[i++]);
      if (!line.empty()) return line;
    }
    return "";
  };

  const std::string header = next_line();
  const std::string magic = std::string(kShardResponseMagic) + " ";
  if (!starts_with(header, magic)) {
    return fail(std::string("missing '") + kShardResponseMagic + "' header");
  }
  const std::string verdict = header.substr(magic.size());
  if (starts_with(verdict, "error")) {
    return fail(trim(verdict.size() > 5 ? verdict.substr(5)
                                        : std::string("worker error")));
  }
  if (verdict != "ok") return fail("unknown shard verdict '" + verdict + "'");

  // The four counter lines arrive in a fixed order; anything else is a
  // protocol error and the range degrades to local re-execution.
  auto want_int_line = [&](const char* key, std::int64_t* out) -> bool {
    const std::vector<std::string> parts = split_ws(next_line());
    return parts.size() == 2 && parts[0] == key && parse_int64(parts[1], out);
  };
  std::int64_t cancelled = 0;
  std::int64_t candidates = 0;
  if (!want_int_line("items", &result.total_items) ||
      !want_int_line("cancelled", &cancelled) ||
      !want_int_line("work_items", &result.work_items) ||
      !want_int_line("candidates", &candidates) || result.total_items < 0 ||
      (cancelled != 0 && cancelled != 1) || result.work_items < 0 ||
      candidates < 0) {
    return fail("malformed shard response counters");
  }
  result.cancelled = cancelled != 0;

  result.designs.reserve(static_cast<std::size_t>(candidates));
  for (std::int64_t d = 0; d < candidates; ++d) {
    // Each candidate is an embedded `sasynth-design v1` blob: magic,
    // mapping, shape, middle — the exact save_design_text layout.
    std::string blob;
    for (int line_idx = 0; line_idx < 4; ++line_idx) {
      const std::string line = next_line();
      if (line.empty() || line == kBlockEnd) {
        return fail("truncated design blob in shard response");
      }
      blob += line + "\n";
    }
    const DesignLoadResult loaded =
        load_design_text(blob, nest, DesignLoadMode::kStrict);
    if (!loaded.ok) return fail("bad design in shard response: " + loaded.error);
    result.designs.push_back(loaded.design);
  }
  if (next_line() != kBlockEnd) return fail("shard response has no end line");
  result.ok = true;
  return result;
}

ShardCoordinator::ShardCoordinator(ShardOptions options)
    : options_(std::move(options)) {
  if (options_.peers.empty()) return;
  // Register the shard instruments up front so `stats --format=prom|json`
  // shows the rows (at zero) before the first RPC, not after.
  ShardMetrics::get();
  PeerHealthOptions health_opts;
  health_opts.failure_threshold = options_.failure_threshold;
  health_opts.probe_interval_ms = options_.probe_interval_ms;
  // Probes stay bounded even with unbounded request I/O (io_timeout 0):
  // stop_prober() joins through at most one probe, so a stalled peer must
  // not be able to hold shutdown for the full request timeout.
  health_opts.probe_timeout_ms =
      options_.io_timeout_ms > 0
          ? std::min<std::int64_t>(options_.io_timeout_ms, 2000)
          : 2000;
  health_ = std::make_unique<PeerHealthRegistry>(options_.peers, health_opts);
  rpc_pool_ = std::make_unique<ThreadPool>(
      static_cast<int>(options_.peers.size()), /*inline_single=*/false);
  health_->start_prober();
}

ShardCoordinator::~ShardCoordinator() { stop_health_prober(); }

void ShardCoordinator::stop_health_prober() {
  if (health_ != nullptr) health_->stop_prober();
}

ShardPartial ShardCoordinator::call_peer(const std::string& peer,
                                         const std::string& block,
                                         const LoopNest& nest) const {
  obs::ScopedSpan span("shard.peer", "shard");
  span.arg("bytes", static_cast<std::int64_t>(block.size()));
  ShardMetrics::get().requests.add(1);

  ShardPartial result;
  std::string error;
  static fault::Site& connect_site = fault::site(fault::kSiteShardConnect);
  const int fd = connect_site.fire() != fault::ErrorKind::kNone
                     ? -1
                     : connect_peer_fd(peer, options_.io_timeout_ms, &error);
  if (fd < 0) {
    if (error.empty()) error = "injected fault at shard.connect";
    result.error = "peer " + peer + ": " + error;
    return result;
  }
  static fault::Site& write_site = fault::site(fault::kSiteShardWrite);
  if (write_site.fire() != fault::ErrorKind::kNone ||
      !write_all_fd(fd, block, options_.io_timeout_ms)) {
    ::close(fd);
    result.error = "peer " + peer + ": write failed";
    return result;
  }
  static fault::Site& read_site = fault::site(fault::kSiteShardRead);
  std::string text;
  bool complete = false;
  if (read_site.fire() == fault::ErrorKind::kNone) {
    FdLineReader reader(fd, options_.io_timeout_ms);
    std::string line;
    while (reader.read_line(&line)) {
      text += line + "\n";
      if (trim(line) == kBlockEnd) {
        complete = true;
        break;
      }
    }
  }
  ::close(fd);
  if (!complete) {
    result.error = "peer " + peer + ": read failed before the end line";
    return result;
  }
  result = parse_shard_response(text, nest);
  if (result.ok) {
    ShardMetrics::get().peer_latency_ms.observe(span.elapsed_seconds() * 1e3);
  } else {
    result.error = "peer " + peer + ": " + result.error;
  }
  return result;
}

std::vector<DseCandidate> ShardCoordinator::local_window(
    const ServeRequest& request, const LoopNest& nest, double util,
    std::int64_t begin, std::int64_t end, bool* cancelled) const {
  obs::ScopedSpan span("shard.local_fallback", "shard");
  span.arg("begin", begin);
  span.arg("end", end);
  // The request's own options carry the cancel token (the remaining deadline
  // budget) and the sweep memo, so the fallback is bounded and cache-warmed
  // exactly like a worker would have been.
  DseOptions opts = request.dse;
  opts.min_dsp_util = util;
  opts.auto_relax_util = false;
  opts.shard_begin = begin;
  opts.shard_end = end;
  const DesignSpaceExplorer explorer(request.device, request.dtype, opts);
  DseStats scratch;
  std::vector<DseCandidate> candidates = explorer.enumerate_phase1(nest, &scratch);
  if (scratch.cancelled) *cancelled = true;
  if (candidates.size() > static_cast<std::size_t>(opts.top_k)) {
    candidates.resize(static_cast<std::size_t>(opts.top_k));
  }
  return candidates;
}

std::vector<DseCandidate> ShardCoordinator::run_round(
    const ServeRequest& request, const LoopNest& nest, double util,
    DseStats* stats, bool* cancelled) const {
  obs::ScopedSpan span("shard.fanout", "shard");
  DseOptions opts = request.dse;
  opts.min_dsp_util = util;
  opts.auto_relax_util = false;
  const DesignSpaceExplorer explorer(request.device, request.dtype, opts);
  // Every node computes the same item list from the same request, so the
  // count alone pins the global index space; the `items` line in each
  // partial is the cross-check.
  const std::int64_t total = explorer.count_phase1_items(nest);
  stats->work_items += total;
  const std::size_t peers = options_.peers.size();
  span.arg("items", total);
  span.arg("peers", static_cast<std::int64_t>(peers));

  // The worker request: same canonical tuple, utilization floor pinned to
  // this round, relaxation off (an empty window must not trigger a local
  // relax decision on one worker while another still finds designs).
  ServeRequest worker_request = request;
  worker_request.dse = opts;
  const Deadline deadline = request.dse.cancel.deadline();
  const std::int64_t remaining_ms =
      deadline.unbounded() ? -1
                           : std::max<std::int64_t>(0, deadline.remaining_ms());

  // Heap-owned per-range state: a hedge-loser RPC task may still be running
  // after run_round returns (its result only matters to the breaker by
  // then), so the task and the collector share ownership.
  struct RangeState {
    std::int64_t begin = 0;
    std::int64_t end = 0;
    bool attempted = false;  ///< an RPC task was dispatched
    bool skipped = false;    ///< breaker open: straight to local fallback
    std::mutex m;
    std::condition_variable cv;
    bool done = false;       ///< partial is valid (guarded by m)
    ShardPartial partial;
  };
  std::vector<std::shared_ptr<RangeState>> ranges;
  ranges.reserve(peers);
  for (std::size_t p = 0; p < peers; ++p) {
    auto state = std::make_shared<RangeState>();
    // Deterministic contiguous split — floor(p*N/P) boundaries, independent
    // of peer health or load by construction.
    state->begin = total * static_cast<std::int64_t>(p) /
                   static_cast<std::int64_t>(peers);
    state->end = total * static_cast<std::int64_t>(p + 1) /
                 static_cast<std::int64_t>(peers);
    ranges.push_back(std::move(state));
  }

  const auto dispatched_at = PeerHealthRegistry::Clock::now();
  if (!request.dse.cancel.cancelled()) {
    for (std::size_t p = 0; p < peers; ++p) {
      const std::shared_ptr<RangeState>& state = ranges[p];
      if (state->end <= state->begin) continue;
      // Consult the breaker: an open peer's range never pays the doomed
      // connect; a half-open peer gets exactly one probe request in flight.
      const PeerHealthRegistry::Admit verdict =
          health_->admit(p, dispatched_at);
      if (verdict == PeerHealthRegistry::Admit::kSkip) {
        state->skipped = true;
        continue;
      }
      state->attempted = true;
      const bool was_probe = verdict == PeerHealthRegistry::Admit::kProbe;
      // The task copies everything it touches (block text, nest, peer name):
      // if the collector hedges past it, only `state` and the registry may
      // still be shared.
      rpc_pool_->submit([this, state, p, was_probe, total, nest,
                         peer = options_.peers[p],
                         block = format_shard_request_block(
                             worker_request, state->begin, state->end,
                             remaining_ms)] {
        const auto rpc_start = PeerHealthRegistry::Clock::now();
        ShardPartial partial = call_peer(peer, block, nest);
        const auto rpc_end = PeerHealthRegistry::Clock::now();
        const bool usable = partial.ok && partial.total_items == total;
        if (usable) {
          health_->on_success(
              p, was_probe,
              std::chrono::duration_cast<std::chrono::microseconds>(rpc_end -
                                                                    rpc_start)
                  .count(),
              rpc_end);
        } else {
          health_->on_failure(p, was_probe,
                              partial.error.empty() ? "item-count mismatch"
                                                    : partial.error,
                              rpc_end);
        }
        {
          std::lock_guard<std::mutex> lock(state->m);
          state->partial = std::move(partial);
          state->done = true;
        }
        state->cv.notify_all();
      });
    }
  }

  // One absolute hedge deadline for the whole fan-out: every range's RPC
  // started (logically) at dispatched_at, so they all convert to local
  // re-execution at the same instant regardless of collection order.
  const auto hedge_deadline =
      dispatched_at + std::chrono::milliseconds(options_.hedge_ms);

  std::vector<std::vector<DseCandidate>> lists(peers);
  auto convert = [&](const ShardPartial& partial,
                     std::vector<DseCandidate>* out) {
    if (partial.cancelled) *cancelled = true;
    out->reserve(partial.designs.size());
    for (const DesignPoint& design : partial.designs) {
      // Recompute the estimate and resource model locally: the models are
      // pure functions of (nest, design, device, dtype), so this matches
      // the worker's own numbers bit for bit without ever round-tripping
      // a float through the wire.
      DseCandidate candidate;
      candidate.design = design;
      candidate.estimate = estimate_performance(
          nest, design, request.device, request.dtype, opts.assumed_freq_mhz);
      candidate.resources =
          model_resources(nest, design, request.device, request.dtype);
      out->push_back(std::move(candidate));
    }
  };
  auto degrade = [&](const RangeState& state, const std::string& reason) {
    // A real peer failure (dead, slow, faulted, malformed, breaker-skipped,
    // or a version-skewed item count): degrade, never fail the request.
    SA_LOG_WARN << "shard: range [" << state.begin << "," << state.end
                << ") degrading to local execution: " << reason;
    ShardMetrics::get().degraded.add(1);
    fault::note_degraded();
  };
  for (std::size_t p = 0; p < peers; ++p) {
    RangeState& state = *ranges[p];
    if (state.end <= state.begin) continue;
    if (state.skipped) {
      degrade(state, "breaker open for peer " + options_.peers[p]);
      lists[p] = local_window(request, nest, util, state.begin, state.end,
                              cancelled);
      continue;
    }
    if (!state.attempted) {
      // Cancelled before dispatch: the bounded local sweep yields the
      // best-so-far cut, same as in-process. Not a peer failure.
      lists[p] = local_window(request, nest, util, state.begin, state.end,
                              cancelled);
      continue;
    }
    bool done;
    {
      std::unique_lock<std::mutex> lock(state.m);
      if (options_.hedge_ms > 0) {
        done = state.cv.wait_until(lock, hedge_deadline,
                                   [&state] { return state.done; });
      } else {
        state.cv.wait(lock, [&state] { return state.done; });
        done = true;
      }
    }
    if (!done) {
      // Hedge: the peer is slow (but maybe alive). Run the range locally
      // and take whichever finished first — both sites enumerate the
      // identical window, so the choice cannot change a response byte.
      ShardMetrics::get().hedges.add(1);
      bool local_cancelled = false;
      std::vector<DseCandidate> local = local_window(
          request, nest, util, state.begin, state.end, &local_cancelled);
      std::lock_guard<std::mutex> lock(state.m);
      if (state.done && state.partial.ok && state.partial.total_items == total) {
        // The peer finished while we hedged: its partial wins the race
        // bookkeeping (the hedge was started but not needed).
        convert(state.partial, &lists[p]);
      } else {
        if (state.done) {
          degrade(state, state.partial.error.empty() ? "item-count mismatch"
                                                     : state.partial.error);
        }
        if (local_cancelled) *cancelled = true;
        lists[p] = std::move(local);
        ShardMetrics::get().hedge_wins.add(1);
      }
      continue;
    }
    std::lock_guard<std::mutex> lock(state.m);
    if (state.partial.ok && state.partial.total_items == total) {
      convert(state.partial, &lists[p]);
    } else {
      degrade(state, state.partial.error.empty() ? "item-count mismatch"
                                                 : state.partial.error);
      lists[p] = local_window(request, nest, util, state.begin, state.end,
                              cancelled);
    }
  }

  // The reduce step: k-way stable merge. Scanning ranges in ascending order
  // and replacing the pick only on a strictly better candidate gives
  // earlier-range-wins ties, which is item order — the same order the
  // in-process stable_sort preserves.
  std::size_t total_candidates = 0;
  for (const std::vector<DseCandidate>& list : lists) {
    total_candidates += list.size();
  }
  std::vector<DseCandidate> merged;
  merged.reserve(total_candidates);
  std::vector<std::size_t> pos(peers, 0);
  for (;;) {
    std::size_t best = peers;
    for (std::size_t p = 0; p < peers; ++p) {
      if (pos[p] >= lists[p].size()) continue;
      if (best == peers ||
          strictly_better(lists[p][pos[p]], lists[best][pos[best]])) {
        best = p;
      }
    }
    if (best == peers) break;
    merged.push_back(std::move(lists[best][pos[best]++]));
  }
  span.arg("candidates", static_cast<std::int64_t>(merged.size()));
  stats->phase1_seconds += span.elapsed_seconds();
  return merged;
}

DseResult ShardCoordinator::explore(const ServeRequest& request,
                                    const LoopNest& nest) const {
  const DseOptions& base = request.dse;
  DseResult result;
  result.stats.effective_min_dsp_util = base.min_dsp_util;
  bool cancelled = false;
  std::vector<DseCandidate> all =
      run_round(request, nest, base.min_dsp_util, &result.stats, &cancelled);
  if (all.empty() && !cancelled && base.auto_relax_util &&
      base.min_dsp_util > 0.0) {
    // Mirror of DesignSpaceExplorer::explore's relax loop — driven here, at
    // the global level, because "phase 1 found nothing" is only knowable
    // after the reduce (one worker's empty window says nothing).
    double relaxed = base.min_dsp_util;
    while (all.empty() && !cancelled && relaxed > 1e-3) {
      relaxed /= 2.0;
      ++result.stats.util_relaxations;
      all = run_round(request, nest, relaxed, &result.stats, &cancelled);
    }
    if (all.empty() && !cancelled) {
      relaxed = 0.0;
      ++result.stats.util_relaxations;
      all = run_round(request, nest, relaxed, &result.stats, &cancelled);
    }
    result.stats.effective_min_dsp_util = relaxed;
  }
  result.stats.cancelled = cancelled;
  const std::size_t keep =
      std::min<std::size_t>(all.size(), static_cast<std::size_t>(base.top_k));
  result.top.assign(all.begin(),
                    all.begin() + static_cast<std::ptrdiff_t>(keep));

  // Phase 2 runs on the coordinator: the top-K list is short, and shipping
  // realized clocks over the wire would trade bit-exactness for nothing.
  double phase2_wall = 0.0;
  {
    obs::ScopedSpan phase2_span("dse.phase2", "dse");
    phase2_span.arg("candidates", static_cast<std::int64_t>(result.top.size()));
    const DesignSpaceExplorer explorer(request.device, request.dtype, base);
    explorer.run_phase2(nest, result.top);
    phase2_wall = phase2_span.elapsed_seconds();
  }
  result.stats.phase2_seconds += phase2_wall;
  result.stats.phase2_cpu_seconds += phase2_wall;

  if (base.cancel.cancelled()) result.stats.cancelled = true;
  result.status =
      result.stats.cancelled ? DseStatus::kCancelled : DseStatus::kOk;
  return result;
}

}  // namespace sasynth
