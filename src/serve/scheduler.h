// Bounded-admission request scheduler: the concurrency layer between a
// protocol session and the DSE.
//
// Accepted work fans out onto the existing sasynth::ThreadPool (task mode,
// PR 1). Admission is bounded: once `queue_limit` requests are in flight
// (queued or executing), try_submit refuses and the session answers with a
// retry-hint response instead of buffering unboundedly — explicit
// backpressure, the client decides when to come back. drain() blocks until
// every accepted request has finished; sessions call it before `stats`,
// `shutdown` and at EOF so counters are settled and shutdown is graceful.
//
// Deadlines make the scheduler shed dead work at both ends of the queue:
// admission refuses a request whose deadline already expired (kExpired,
// `serve_rejected_expired_total`), and a request that expires while queued
// is handed to its work callback with shed=true at dequeue
// (`serve_shed_expired_total`) so the session can answer `timeout` without
// paying for a DSE nobody is waiting for.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "util/deadline.h"
#include "util/thread_pool.h"

namespace sasynth {

/// try_submit outcome. kExpired is not backpressure: the queue may be empty;
/// the request simply arrived dead.
enum class Admission { kAccepted, kQueueFull, kExpired };

class RequestScheduler {
 public:
  /// `jobs` resolves like ThreadPool (0 = SASYNTH_JOBS env, then hardware);
  /// 1 runs every request inline on the submitting session thread.
  /// `queue_limit` < 1 is clamped to 1.
  RequestScheduler(int jobs, std::int64_t queue_limit);

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// One accepted request. `shed` is true when the deadline expired between
  /// admission and dequeue — the callback must answer (the ordered writer
  /// needs every seq) but should skip the real work.
  using Work = std::function<void(bool shed)>;

  /// Admits `work` onto a pool worker unless the queue is full or `deadline`
  /// has already expired. `token` (optional) rides along to the pool so
  /// queue-side expiry is visible in `pool_tasks_expired_total`.
  Admission try_submit(Work work, Deadline deadline = Deadline(),
                       CancelToken token = CancelToken());

  /// Admission-exempt pool submission for internal continuations that must
  /// leave the calling thread (e.g. a singleflight completion whose follower
  /// callbacks may each re-execute a full request — running those on the
  /// event-loop thread would stall every session). Always accepted, never
  /// refused or shed, and counted in pending() so drain() covers it; it is
  /// not a client admission, so `serve_admitted_total` is untouched.
  void submit_followup(std::function<void()> fn);

  /// Blocks until every accepted work item has completed.
  void drain();

  /// drain() bounded by `timeout_ms` (<= 0 returns immediately). True when
  /// the queue drained; false when work was still in flight at the timeout —
  /// the caller decides whether to wait harder or abandon ship.
  bool drain_for(std::int64_t timeout_ms);

  int jobs() const { return pool_.jobs(); }
  std::int64_t queue_limit() const { return queue_limit_; }

  /// Accepted-but-unfinished request count right now.
  std::int64_t pending() const;

  /// Highest pending() ever observed (the queue-depth high-water counter).
  std::int64_t high_water() const;

  /// try_submit refusals with a live deadline (queue full).
  std::int64_t rejected() const;

  /// try_submit refusals because the deadline was already expired.
  std::int64_t rejected_expired() const;

  /// Accepted requests whose deadline expired before dequeue (work ran with
  /// shed=true).
  std::int64_t shed_expired() const;

 private:
  std::int64_t queue_limit_;
  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::int64_t pending_ = 0;
  std::int64_t high_water_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t rejected_expired_ = 0;
  std::int64_t shed_expired_ = 0;
  // Declared last: workers may still touch the fields above while the pool
  // drains during destruction.
  ThreadPool pool_;
};

}  // namespace sasynth
