// Bounded-admission request scheduler: the concurrency layer between a
// protocol session and the DSE.
//
// Accepted work fans out onto the existing sasynth::ThreadPool (task mode,
// PR 1). Admission is bounded: once `queue_limit` requests are in flight
// (queued or executing), try_submit refuses and the session answers with a
// retry-hint response instead of buffering unboundedly — explicit
// backpressure, the client decides when to come back. drain() blocks until
// every accepted request has finished; sessions call it before `stats`,
// `shutdown` and at EOF so counters are settled and shutdown is graceful.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>

#include "util/thread_pool.h"

namespace sasynth {

class RequestScheduler {
 public:
  /// `jobs` resolves like ThreadPool (0 = SASYNTH_JOBS env, then hardware);
  /// 1 runs every request inline on the submitting session thread.
  /// `queue_limit` < 1 is clamped to 1.
  RequestScheduler(int jobs, std::int64_t queue_limit);

  RequestScheduler(const RequestScheduler&) = delete;
  RequestScheduler& operator=(const RequestScheduler&) = delete;

  /// Runs `work` on a pool worker. Returns false — without queuing — when
  /// the admission queue is full.
  bool try_submit(std::function<void()> work);

  /// Blocks until every accepted work item has completed.
  void drain();

  int jobs() const { return pool_.jobs(); }
  std::int64_t queue_limit() const { return queue_limit_; }

  /// Accepted-but-unfinished request count right now.
  std::int64_t pending() const;

  /// Highest pending() ever observed (the queue-depth high-water counter).
  std::int64_t high_water() const;

  /// try_submit refusals.
  std::int64_t rejected() const;

 private:
  std::int64_t queue_limit_;
  mutable std::mutex mutex_;
  std::condition_variable idle_;
  std::int64_t pending_ = 0;
  std::int64_t high_water_ = 0;
  std::int64_t rejected_ = 0;
  // Declared last: workers may still touch the fields above while the pool
  // drains during destruction.
  ThreadPool pool_;
};

}  // namespace sasynth
