// Persistent design cache: the memoization layer in front of the DSE.
//
// A cache entry maps the complete request tuple — rendered by
// canonical_request_text() and keyed by its FNV-1a hash (util/rng.h) — to
// the design point the DSE chose for it. Everything else in a response
// (throughput, resources, realized clock) is recomputed from the design by
// the deterministic models, so a hit is byte-identical to a fresh
// exploration.
//
// Two tiers:
//   * in-memory LRU, bounded by `capacity` entries;
//   * optional on-disk store (one `sasynth-cache v1` text file per key under
//     `dir`), which survives restarts and is shared between sasynthd and
//     sasynth_cli --design-cache.
//
// Disk loads are corruption-tolerant by construction: the file must carry
// the magic, the expected key, the full canonical request (guarding against
// hash collisions and cross-request aliasing), and a design blob that
// load_design_text() validates against the request's loop nest. Any
// mismatch — truncation, garbage, a stale entry for a different nest — is a
// miss that falls back to a fresh DSE; it never crashes and never yields a
// partially initialized design.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/design_point.h"
#include "loopnest/loop_nest.h"

namespace sasynth {

struct DesignCacheStats {
  std::int64_t hits = 0;          ///< lookups answered (memory or disk)
  std::int64_t misses = 0;
  std::int64_t disk_hits = 0;     ///< subset of hits served from disk
  std::int64_t load_failures = 0; ///< corrupt/mismatched disk entries skipped
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;     ///< in-memory LRU evictions
  /// insert() calls whose on-disk persist failed (directory creation, write,
  /// or rename). The insertion itself still counts — the memory tier has the
  /// entry — so `insertions - disk_store_failures` bounds what a fresh
  /// process can possibly find on disk.
  std::int64_t disk_store_failures = 0;
};

class DesignCache {
 public:
  /// `dir` empty means in-memory only. The directory is created on first
  /// insert; creation failure degrades to in-memory operation (logged).
  DesignCache(std::string dir, std::size_t capacity);

  DesignCache(const DesignCache&) = delete;
  DesignCache& operator=(const DesignCache&) = delete;

  /// Looks `canonical_request` up (memory first, then disk). On a hit the
  /// design — validated against `nest` — is written to `out` and the entry
  /// becomes most-recently-used. Thread-safe.
  bool lookup(const std::string& canonical_request, const LoopNest& nest,
              DesignPoint* out);

  /// Stores (or refreshes) the entry, evicting the least-recently-used
  /// in-memory entry beyond capacity and rewriting the disk file when a
  /// directory is configured. Thread-safe.
  void insert(const std::string& canonical_request, const DesignPoint& design);

  DesignCacheStats stats() const;
  std::size_t size() const;
  const std::string& dir() const { return dir_; }

  /// Disk file of a key: <dir>/<016x key>.design.
  std::string entry_path(std::uint64_t key) const;

 private:
  struct Entry {
    std::string canonical;
    DesignPoint design;
    std::list<std::uint64_t>::iterator lru_pos;
  };

  bool load_from_disk(std::uint64_t key, const std::string& canonical_request,
                      const LoopNest& nest, DesignPoint* out);
  void store_to_disk(std::uint64_t key, const std::string& canonical_request,
                     const DesignPoint& design);
  void touch(Entry& entry, std::uint64_t key);
  void insert_locked(std::uint64_t key, const std::string& canonical_request,
                     const DesignPoint& design);

  std::string dir_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  ///< front = most recent
  DesignCacheStats stats_;
};

}  // namespace sasynth
