// Cross-request sweep cache: the serve-layer SweepMemo implementation.
//
// Sits one level below the DesignCache. The DesignCache memoizes whole
// requests (exact canonical-text match); this cache memoizes the per-item
// work *inside* a phase-1 sweep, so requests that are not byte-identical
// still share computation:
//
//   * same layer re-explored under a different min_dsp_util (auto-relax
//     retries, tuning sweeps) — exact-tier hits replay every (mapping,
//     shape) DFS verbatim;
//   * layers differing only in their H/W feature-map dimensions (the common
//     shape of a CNN's conv stack) — hint-tier entries seed the
//     branch-and-bound floor of the new sweep with the middle bounds the
//     structurally identical items solved to before.
//
// Correctness posture follows DesignCache: keys are FNV-1a hashes of the
// full (tier, context, item) texts and every hit re-verifies the stored
// texts, so a hash collision is a miss, never a wrong answer. An exact-tier
// hit is bit-identical to re-running the DFS (the context text covers every
// input the DFS reads — see sweep_context_text); hint-tier answers are
// advisory by contract and re-evaluated by the caller. Either way a warm
// cache can change only the time to a response, never its bytes.
//
// Bounded: one LRU across both tiers, `capacity` entries. Context strings
// (hundreds of bytes, shared by every item of a sweep) are interned through
// shared_ptr so each distinct context is stored once. Thread-safe; the DSE
// stores from worker threads.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/sweep_memo.h"

namespace sasynth {

struct SweepCacheStats {
  std::int64_t exact_hits = 0;
  std::int64_t exact_misses = 0;
  std::int64_t hint_hits = 0;
  std::int64_t hint_misses = 0;
  std::int64_t insertions = 0;  ///< both tiers, refreshes included
  std::int64_t evictions = 0;   ///< LRU evictions (both tiers)
};

class SweepCache : public SweepMemo {
 public:
  /// `capacity` bounds the total entry count across both tiers; 0 disables
  /// the cache (every lookup misses, every store is dropped).
  explicit SweepCache(std::size_t capacity);

  SweepCache(const SweepCache&) = delete;
  SweepCache& operator=(const SweepCache&) = delete;

  bool lookup_exact(const std::string& context, const std::string& item,
                    ExactResult* out) override;
  void store_exact(const std::string& context, const std::string& item,
                   const ExactResult& result) override;
  bool lookup_hint(const std::string& context, const std::string& item,
                   std::vector<std::int64_t>* hint_s) override;
  void store_hint(const std::string& context, const std::string& item,
                  const std::vector<std::int64_t>& best_s) override;

  SweepCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    char tier = 'x';  ///< 'x' exact, 'h' hint
    std::shared_ptr<const std::string> context;
    std::string item;
    bool found_fit = false;            ///< exact tier only
    std::vector<std::int64_t> best_s;  ///< empty for exact not-found
    std::list<std::uint64_t>::iterator lru_pos;
  };

  /// Finds a verified entry (tier + texts match, not just the hash) and
  /// marks it most-recently-used. Caller holds the mutex.
  Entry* find_locked(char tier, std::uint64_t key, const std::string& context,
                     const std::string& item);
  void store_locked(char tier, std::uint64_t key, const std::string& context,
                    const std::string& item, bool found_fit,
                    const std::vector<std::int64_t>& best_s);
  std::shared_ptr<const std::string> intern_locked(const std::string& context);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::list<std::uint64_t> lru_;  ///< front = most recent
  /// context text -> interned copy. Weak so evicting the last entry of a
  /// context releases its memory; expired slots are swept opportunistically.
  std::unordered_map<std::string, std::weak_ptr<const std::string>> interned_;
  SweepCacheStats stats_;
};

}  // namespace sasynth
