#include "serve/sweep_cache.h"

#include "obs/metrics.h"
#include "util/rng.h"

namespace sasynth {

namespace {

/// Process-global mirrors (docs/OBSERVABILITY.md, `sweep_cache_*` family).
/// Aggregate across every SweepCache in the process, like the serve_*
/// mirrors of ServerCounters.
struct SweepCacheMetrics {
  obs::Counter& exact_hits;
  obs::Counter& exact_misses;
  obs::Counter& hint_hits;
  obs::Counter& hint_misses;
  obs::Counter& insertions;
  obs::Counter& evictions;
  obs::Gauge& entries;

  static SweepCacheMetrics& get() {
    static SweepCacheMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new SweepCacheMetrics{
          r.counter("sweep_cache_exact_hits_total"),
          r.counter("sweep_cache_exact_misses_total"),
          r.counter("sweep_cache_hint_hits_total"),
          r.counter("sweep_cache_hint_misses_total"),
          r.counter("sweep_cache_insertions_total"),
          r.counter("sweep_cache_evictions_total"),
          r.gauge("sweep_cache_entries"),
      };
    }();
    return *m;
  }
};

/// One hash over the full key tuple. The tier byte keeps an exact and a hint
/// entry for the same texts from aliasing; the unit separator keeps
/// (context, item) splits unambiguous.
std::uint64_t key_hash(char tier, const std::string& context,
                       const std::string& item) {
  std::string key;
  key.reserve(2 + context.size() + 1 + item.size());
  key.push_back(tier);
  key.push_back('\x1f');
  key += context;
  key.push_back('\x1f');
  key += item;
  return fnv1a64(key);
}

}  // namespace

SweepCache::SweepCache(std::size_t capacity) : capacity_(capacity) {}

SweepCache::Entry* SweepCache::find_locked(char tier, std::uint64_t key,
                                           const std::string& context,
                                           const std::string& item) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  Entry& entry = it->second;
  // Verify the texts, not just the hash: a collision is a miss, never a
  // wrong answer (same posture as DesignCache's canonical check).
  if (entry.tier != tier || *entry.context != context || entry.item != item) {
    return nullptr;
  }
  lru_.erase(entry.lru_pos);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
  return &entry;
}

std::shared_ptr<const std::string> SweepCache::intern_locked(
    const std::string& context) {
  auto it = interned_.find(context);
  if (it != interned_.end()) {
    if (auto held = it->second.lock()) return held;
  }
  // Opportunistic sweep of expired slots so the intern map cannot outgrow
  // the distinct contexts still referenced by live entries.
  if (interned_.size() > 8 && interned_.size() > 2 * entries_.size()) {
    for (auto sweep = interned_.begin(); sweep != interned_.end();) {
      if (sweep->second.expired()) {
        sweep = interned_.erase(sweep);
      } else {
        ++sweep;
      }
    }
  }
  auto held = std::make_shared<const std::string>(context);
  interned_[context] = held;
  return held;
}

void SweepCache::store_locked(char tier, std::uint64_t key,
                              const std::string& context,
                              const std::string& item, bool found_fit,
                              const std::vector<std::int64_t>& best_s) {
  ++stats_.insertions;
  SweepCacheMetrics::get().insertions.add(1);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh in place (also the hash-collision case: latest wins — both
    // tiers tolerate replacement, the exact tier because the colliding
    // lookup re-verifies and misses).
    Entry& entry = it->second;
    entry.tier = tier;
    entry.context = intern_locked(context);
    entry.item = item;
    entry.found_fit = found_fit;
    entry.best_s = best_s;
    lru_.erase(entry.lru_pos);
    lru_.push_front(key);
    entry.lru_pos = lru_.begin();
    return;
  }
  Entry entry;
  entry.tier = tier;
  entry.context = intern_locked(context);
  entry.item = item;
  entry.found_fit = found_fit;
  entry.best_s = best_s;
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
  entries_.emplace(key, std::move(entry));
  while (entries_.size() > capacity_) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    entries_.erase(victim);
    ++stats_.evictions;
    SweepCacheMetrics::get().evictions.add(1);
  }
  SweepCacheMetrics::get().entries.set(
      static_cast<std::int64_t>(entries_.size()));
}

bool SweepCache::lookup_exact(const std::string& context,
                              const std::string& item, ExactResult* out) {
  if (capacity_ == 0) return false;
  const std::uint64_t key = key_hash('x', context, item);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_locked('x', key, context, item);
  if (entry == nullptr) {
    ++stats_.exact_misses;
    SweepCacheMetrics::get().exact_misses.add(1);
    return false;
  }
  ++stats_.exact_hits;
  SweepCacheMetrics::get().exact_hits.add(1);
  out->found_fit = entry->found_fit;
  out->best_s = entry->best_s;
  return true;
}

void SweepCache::store_exact(const std::string& context,
                             const std::string& item,
                             const ExactResult& result) {
  if (capacity_ == 0) return;
  const std::uint64_t key = key_hash('x', context, item);
  std::lock_guard<std::mutex> lock(mutex_);
  store_locked('x', key, context, item, result.found_fit, result.best_s);
}

bool SweepCache::lookup_hint(const std::string& context,
                             const std::string& item,
                             std::vector<std::int64_t>* hint_s) {
  if (capacity_ == 0) return false;
  const std::uint64_t key = key_hash('h', context, item);
  std::lock_guard<std::mutex> lock(mutex_);
  Entry* entry = find_locked('h', key, context, item);
  if (entry == nullptr) {
    ++stats_.hint_misses;
    SweepCacheMetrics::get().hint_misses.add(1);
    return false;
  }
  ++stats_.hint_hits;
  SweepCacheMetrics::get().hint_hits.add(1);
  *hint_s = entry->best_s;
  return true;
}

void SweepCache::store_hint(const std::string& context,
                            const std::string& item,
                            const std::vector<std::int64_t>& best_s) {
  if (capacity_ == 0) return;
  const std::uint64_t key = key_hash('h', context, item);
  std::lock_guard<std::mutex> lock(mutex_);
  store_locked('h', key, context, item, /*found_fit=*/true, best_s);
}

SweepCacheStats SweepCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SweepCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace sasynth
