#include "serve/peer_health.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>

#include "faultinject/faultinject.h"
#include "obs/metrics.h"
#include "serve/tcp.h"
#include "util/logging.h"
#include "util/strings.h"

namespace sasynth {

namespace {

/// Process-global breaker/probe instrumentation (docs/OBSERVABILITY.md).
/// Per-peer state gauges are registered per registry (the name carries the
/// peer index), so only the fleet-wide totals live here.
struct HealthMetrics {
  obs::Counter& breaker_opens;  ///< closed/half-open -> open transitions
  obs::Counter& probes;         ///< background pings attempted

  static HealthMetrics& get() {
    static HealthMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new HealthMetrics{
          r.counter("shard_breaker_opens_total"),
          r.counter("shard_probes_total"),
      };
    }();
    return *m;
  }
};

std::int64_t ms_between(PeerHealthRegistry::Clock::time_point from,
                        PeerHealthRegistry::Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(to - from)
      .count();
}

}  // namespace

const char* peer_state_name(PeerState state) {
  switch (state) {
    case PeerState::kClosed:
      return "closed";
    case PeerState::kHalfOpen:
      return "half_open";
    case PeerState::kOpen:
      return "open";
  }
  return "unknown";
}

std::string split_peer_host_port(const std::string& peer, std::string* host,
                                 int* port) {
  const std::size_t colon = peer.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= peer.size()) {
    return "bad peer '" + peer + "' (expected host:port)";
  }
  *host = peer.substr(0, colon);
  const std::string port_text = peer.substr(colon + 1);
  errno = 0;
  char* end = nullptr;
  const long long p = std::strtoll(port_text.c_str(), &end, 10);
  if (port_text.empty() || end == nullptr || *end != '\0' || errno == ERANGE ||
      p < 1 || p > 65535) {
    return "bad peer '" + peer + "' (port must be an integer in 1..65535)";
  }
  in_addr probe{};
  const std::string numeric = *host == "localhost" ? "127.0.0.1" : *host;
  if (inet_pton(AF_INET, numeric.c_str(), &probe) != 1) {
    return "bad peer host '" + *host +
           "' (expected a numeric IPv4 address or localhost)";
  }
  *port = static_cast<int>(p);
  return "";
}

int connect_peer_fd(const std::string& peer, std::int64_t timeout_ms,
                    std::string* error) {
  std::string host;
  int port = 0;
  const std::string parse_error = split_peer_host_port(peer, &host, &port);
  if (!parse_error.empty()) {
    *error = parse_error;
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  ::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr);

  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int wait_ms =
        timeout_ms > 0
            ? static_cast<int>(std::min<std::int64_t>(timeout_ms, INT_MAX))
            : -1;
    const int pr = ::poll(&pfd, 1, wait_ms);
    if (pr <= 0) {
      ::close(fd);
      *error = pr == 0 ? "connect timed out"
                       : std::string("poll: ") + std::strerror(errno);
      return -1;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    if (so_error != 0) {
      ::close(fd);
      *error = std::string("connect: ") + std::strerror(so_error);
      return -1;
    }
  } else if (rc != 0) {
    ::close(fd);
    *error = std::string("connect: ") + std::strerror(errno);
    return -1;
  }
  ::fcntl(fd, F_SETFL, flags);
  return fd;
}

bool probe_peer_ping(const std::string& peer, std::int64_t timeout_ms,
                     std::string* error) {
  static fault::Site& probe_site = fault::site(fault::kSiteShardProbe);
  if (probe_site.fire() != fault::ErrorKind::kNone) {
    *error = "injected fault at shard.probe";
    return false;
  }
  const int fd = connect_peer_fd(peer, timeout_ms, error);
  if (fd < 0) return false;
  if (!write_all_fd(fd, "ping\n", timeout_ms)) {
    ::close(fd);
    *error = "ping write failed";
    return false;
  }
  FdLineReader reader(fd, timeout_ms);
  std::string line;
  bool pong = false;
  while (reader.read_line(&line)) {
    const std::string text = trim(line);
    if (text == "sasynth-pong v1") pong = true;
    if (text == "end") break;
  }
  ::close(fd);
  if (!pong) {
    *error = "no pong before the end line";
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// PeerHealthRegistry

struct PeerHealthRegistry::Peer {
  std::string address;
  PeerState state = PeerState::kClosed;
  int consecutive_failures = 0;
  /// Consecutive failed probe cycles since the breaker opened; indexes the
  /// deterministic backoff schedule.
  std::int64_t backoff_round = 0;
  bool probe_in_flight = false;  ///< half-open single-flight latch
  std::int64_t breaker_opens = 0;
  std::int64_t probes = 0;
  std::string last_error;
  bool probed_ever = false;
  Clock::time_point last_probe{};
  bool next_probe_scheduled = false;
  Clock::time_point next_probe_at{};
  std::int64_t last_latency_us = -1;
  obs::Gauge* state_gauge = nullptr;  ///< shard_peer_state_p<i>

  void set_state(PeerState s) {
    state = s;
    if (state_gauge != nullptr) {
      state_gauge->set(static_cast<std::int64_t>(s));
    }
  }
};

PeerHealthRegistry::PeerHealthRegistry(std::vector<std::string> peers,
                                       PeerHealthOptions opts)
    : opts_(opts) {
  // Register the fleet totals up front so `stats --format=prom|json` shows
  // the rows (at zero) before the first breaker event.
  HealthMetrics::get();
  peers_.reserve(peers.size());
  for (std::size_t i = 0; i < peers.size(); ++i) {
    Peer peer;
    peer.address = std::move(peers[i]);
    // One gauge per fleet slot, indexed in --peers order (prom label support
    // is out of scope for the obs registry; the health command maps index to
    // address). set() is gated on metrics_enabled like every instrument.
    peer.state_gauge = &obs::MetricsRegistry::global().gauge(
        strformat("shard_peer_state_p%zu", i));
    peer.state_gauge->set(0);
    peers_.push_back(std::move(peer));
  }
}

PeerHealthRegistry::~PeerHealthRegistry() { stop_prober(); }

std::size_t PeerHealthRegistry::size() const { return peers_.size(); }

std::int64_t PeerHealthRegistry::backoff_ms(const PeerHealthOptions& opts,
                                            std::int64_t round) {
  const std::int64_t base = std::max<std::int64_t>(1, opts.probe_interval_ms);
  const std::int64_t cap = base * 16;
  if (round >= 4) return cap;  // 16x = the shift-4 step; later rounds clamp
  return std::min<std::int64_t>(base << round, cap);
}

PeerHealthRegistry::Admit PeerHealthRegistry::admit(std::size_t peer,
                                                    Clock::time_point now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mutex_);
  Peer& p = peers_[peer];
  switch (p.state) {
    case PeerState::kClosed:
      return Admit::kSend;
    case PeerState::kOpen:
      return Admit::kSkip;
    case PeerState::kHalfOpen:
      if (p.probe_in_flight) return Admit::kSkip;
      p.probe_in_flight = true;
      return Admit::kProbe;
  }
  return Admit::kSkip;
}

void PeerHealthRegistry::to_open(Peer& peer, Clock::time_point now) {
  peer.set_state(PeerState::kOpen);
  ++peer.breaker_opens;
  HealthMetrics::get().breaker_opens.add(1);
  peer.next_probe_scheduled = opts_.probe_interval_ms > 0;
  peer.next_probe_at =
      now + std::chrono::milliseconds(backoff_ms(opts_, peer.backoff_round));
  prober_cv_.notify_all();  // the prober re-derives its next due time
}

void PeerHealthRegistry::on_success(std::size_t peer, bool was_probe,
                                    std::int64_t latency_us,
                                    Clock::time_point now) {
  (void)now;
  std::lock_guard<std::mutex> lock(mutex_);
  Peer& p = peers_[peer];
  if (was_probe) p.probe_in_flight = false;
  p.consecutive_failures = 0;
  p.backoff_round = 0;
  p.last_latency_us = latency_us;
  p.last_error.clear();
  if (p.state != PeerState::kClosed) {
    SA_LOG_INFO << "shard: peer " << p.address << " re-admitted ("
                << peer_state_name(p.state) << " -> closed)";
    p.next_probe_scheduled = false;
    p.set_state(PeerState::kClosed);
  }
}

void PeerHealthRegistry::on_failure(std::size_t peer, bool was_probe,
                                    const std::string& error,
                                    Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Peer& p = peers_[peer];
  p.last_error = error;
  if (was_probe) {
    // The half-open trial failed: re-open one backoff step later. The
    // failure count stays at the threshold that tripped the breaker — the
    // schedule, not the count, carries the history now.
    p.probe_in_flight = false;
    ++p.backoff_round;
    SA_LOG_WARN << "shard: peer " << p.address
                << " failed its re-admission probe: " << error;
    to_open(p, now);
    return;
  }
  if (p.state != PeerState::kClosed) {
    // A late loser (hedged RPC that lost after the breaker already moved)
    // must not re-trip a breaker it no longer owns; bookkeeping only.
    return;
  }
  ++p.consecutive_failures;
  if (p.consecutive_failures >= opts_.failure_threshold) {
    SA_LOG_WARN << "shard: peer " << p.address << " breaker opened after "
                << p.consecutive_failures
                << " consecutive failures, last: " << error;
    to_open(p, now);
  }
}

void PeerHealthRegistry::record_probe_result(std::size_t peer, bool ok,
                                             const std::string& error,
                                             Clock::time_point now) {
  std::lock_guard<std::mutex> lock(mutex_);
  Peer& p = peers_[peer];
  ++p.probes;
  p.probed_ever = true;
  p.last_probe = now;
  HealthMetrics::get().probes.add(1);
  if (p.state != PeerState::kOpen) return;  // raced a concurrent transition
  if (ok) {
    // A pong proves the process answers; the *real* trial is the next shard
    // request (single-flight, admit() hands out exactly one kProbe ticket).
    SA_LOG_INFO << "shard: peer " << p.address
                << " answered its health probe (open -> half_open)";
    p.next_probe_scheduled = false;
    p.set_state(PeerState::kHalfOpen);
  } else {
    p.last_error = error;
    ++p.backoff_round;
    p.next_probe_scheduled = opts_.probe_interval_ms > 0;
    p.next_probe_at =
        now + std::chrono::milliseconds(backoff_ms(opts_, p.backoff_round));
  }
}

int PeerHealthRegistry::probe_due_peers(Clock::time_point now) {
  // Collect due peers under the lock, ping without it (a ping can block up
  // to probe_timeout_ms), then apply each result. Only the prober moves
  // open peers, so the collected set cannot transition concurrently except
  // through on_success (which record_probe_result tolerates).
  std::vector<std::size_t> due;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      Peer& p = peers_[i];
      if (p.state == PeerState::kOpen && p.next_probe_scheduled &&
          p.next_probe_at <= now) {
        due.push_back(i);
      }
    }
  }
  for (const std::size_t i : due) {
    std::string address;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      address = peers_[i].address;
    }
    std::string error;
    const bool ok = probe_peer_ping(address, opts_.probe_timeout_ms, &error);
    record_probe_result(i, ok, error, Clock::now());
  }
  return static_cast<int>(due.size());
}

void PeerHealthRegistry::start_prober() {
  if (opts_.probe_interval_ms <= 0 || peers_.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (prober_.joinable()) return;
  prober_stop_ = false;
  prober_ = std::thread([this] { prober_loop(); });
}

void PeerHealthRegistry::stop_prober() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

void PeerHealthRegistry::prober_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!prober_stop_) {
    // Sleep until the earliest scheduled probe (or one interval, so a probe
    // scheduled while we slept is picked up promptly either way).
    Clock::time_point wake =
        Clock::now() + std::chrono::milliseconds(opts_.probe_interval_ms);
    for (const Peer& p : peers_) {
      if (p.state == PeerState::kOpen && p.next_probe_scheduled &&
          p.next_probe_at < wake) {
        wake = p.next_probe_at;
      }
    }
    prober_cv_.wait_until(lock, wake, [this] { return prober_stop_; });
    if (prober_stop_) return;
    lock.unlock();
    probe_due_peers(Clock::now());
    lock.lock();
  }
}

std::vector<PeerHealthSnapshot> PeerHealthRegistry::snapshot(
    Clock::time_point now) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<PeerHealthSnapshot> out;
  out.reserve(peers_.size());
  for (const Peer& p : peers_) {
    PeerHealthSnapshot snap;
    snap.peer = p.address;
    snap.state = p.state;
    snap.consecutive_failures = p.consecutive_failures;
    snap.breaker_opens = p.breaker_opens;
    snap.probes = p.probes;
    snap.last_error = p.last_error;
    snap.last_probe_age_ms =
        p.probed_ever ? std::max<std::int64_t>(0, ms_between(p.last_probe, now))
                      : -1;
    snap.next_probe_in_ms =
        p.next_probe_scheduled ? std::max<std::int64_t>(
                                     0, ms_between(now, p.next_probe_at))
                               : -1;
    snap.last_latency_us = p.last_latency_us;
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace sasynth
