// Single-threaded event-loop TCP transport for the synthesis service: the
// scalable replacement for thread-per-session sasynthd serving.
//
// One loop thread owns every connection: non-blocking accept, per-connection
// read/write state machines (line framing identical to FdLineReader, ordered
// per-session responses identical to serve()'s writer thread), with request
// execution still dispatched through the SynthServer's scheduler/ThreadPool.
// Completed responses are handed back to the loop over a mutex-guarded
// completion queue plus an eventfd wakeup (self-pipe where eventfd does not
// exist), so pool workers never touch connection state — connections are
// loop-thread-only and need no locks.
//
// On Linux the poller is epoll; elsewhere (or with
// -DSASYNTH_EVENT_LOOP_FORCE_POLL for testing the fallback) it is poll(2)
// over the same state machine. Both honor the server's --io-timeout on each
// direction of every connection, fire the same tcp.read/tcp.write fault
// sites with the same kind semantics as the blocking transport, and add two
// loop-specific sites: `loop.poll` (transient poller failure, absorbed and
// retried) and `loop.wakeup` (a lost cross-thread wakeup, recovered by the
// loop's bounded <=250 ms wait tick — a completion may be delayed, never
// dropped).
//
// Determinism invariant (docs/ARCHITECTURE.md): the transport orders bytes,
// it never computes. Every response byte comes from SynthServer::handle /
// handle_deploy / handle_command, so responses are byte-identical to the
// blocking transport at any connection count, interleaving, or cache state.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/server.h"
#include "serve/tcp.h"

namespace sasynth {

struct EventLoopOptions {
  /// Listen port on 127.0.0.1 (0 = ephemeral, reported by port()).
  int port = 0;
  /// Open-connection bound; 0 = unlimited. A client beyond the bound gets a
  /// one-line retry response and an immediate close — connection-level
  /// backpressure in front of the request-level admission queue.
  std::int64_t max_connections = 0;
  /// Bound on the graceful drain (request_stop() or the `shutdown` command):
  /// in-flight requests finish and responses flush within this budget, or
  /// run() force-closes what remains and returns 1.
  std::int64_t drain_timeout_ms = 5000;
};

class EventLoopServer {
 public:
  EventLoopServer(SynthServer& server, EventLoopOptions options);
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Binds the listener and builds the poller + wakeup pipe. On failure
  /// returns false with a message in `error`; run() must not be called.
  bool start(std::string* error);

  /// The bound port (valid after start()).
  int port() const;

  /// Runs the loop until a graceful stop completes: request_stop() from
  /// another thread, or a session's `shutdown` command. Returns 0 when every
  /// in-flight request finished and every response flushed inside
  /// drain_timeout_ms, 1 when the bound expired with work or bytes still
  /// outstanding (remaining connections are force-closed either way).
  int run();

  /// Begins the graceful drain from any thread (the SIGTERM path): the loop
  /// stops accepting, stops reading, finishes in-flight work, flushes, and
  /// run() returns. Idempotent; safe to call before run() starts.
  void request_stop();

  /// Open connections right now (loop-thread maintained; other threads see
  /// a recent value). Diagnostics and tests only.
  std::int64_t open_connections() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace sasynth
