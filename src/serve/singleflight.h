// In-flight request coalescing ("singleflight"): N concurrent sessions
// asking for the same canonical request text share one execution.
//
// The DesignCache deduplicates identical requests across *time*; this table
// deduplicates them across *in-flight concurrency*. The first session to
// join a key becomes the leader and runs the request; sessions that join
// while the leader is in flight become followers and park a callback. When
// the leader completes, every follower callback is invoked exactly once —
// either with the leader's response (`shared=true`, only for verdicts that
// are pure functions of the request text: ok/error/retry) or with
// `shared=false`, which tells the follower to produce its own answer (the
// leader's verdict was a timeout, which reflects the *leader's* deadline and
// must never be handed to a session with a different budget — see
// docs/SERVING.md "Concurrency model & coalescing").
//
// Keying on the canonical request text (the DesignCache key material) keeps
// the two dedup layers consistent: execution policy (deadline_ms, dse.jobs)
// is excluded from both, so a deadlined request coalesces with a plain one
// and each still gets a verdict that honors its own budget.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace sasynth {

class SingleFlight {
 public:
  enum class Role { kLeader, kFollower };

  /// Follower completion callback. `shared` true: `response` is the leader's
  /// (shareable) response, deliver it. `shared` false: the leader's verdict
  /// was not shareable — run the request yourself (`response` is the
  /// leader's verdict, for logging only).
  using OnResult =
      std::function<void(const std::string& response, bool shared)>;

  /// Joins the flight for `key`. Returns kLeader when no flight was open —
  /// the caller now owns the key and MUST eventually call complete() exactly
  /// once (on any thread), or followers wait forever. Returns kFollower when
  /// a leader is already in flight; `on_result` is parked and will be
  /// invoked exactly once by that leader's complete(). A leader's own
  /// callback is never stored — the leader already has its response.
  Role join(const std::string& key, OnResult on_result);

  /// Closes the flight for `key` and invokes every parked follower callback
  /// (outside the table lock, on the calling thread, in join order) with
  /// (`response`, `shareable`). Returns the number of followers notified.
  /// Unknown keys are a harmless no-op returning 0.
  std::int64_t complete(const std::string& key, const std::string& response,
                        bool shareable);

  /// Open flights right now (leaders in progress).
  std::int64_t inflight() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<OnResult>> flights_;
};

}  // namespace sasynth
