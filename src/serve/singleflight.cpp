#include "serve/singleflight.h"

#include <utility>

namespace sasynth {

SingleFlight::Role SingleFlight::join(const std::string& key,
                                      OnResult on_result) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = flights_.find(key);
  if (it == flights_.end()) {
    flights_.emplace(key, std::vector<OnResult>());
    return Role::kLeader;
  }
  it->second.push_back(std::move(on_result));
  return Role::kFollower;
}

std::int64_t SingleFlight::complete(const std::string& key,
                                    const std::string& response,
                                    bool shareable) {
  std::vector<OnResult> followers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return 0;
    followers = std::move(it->second);
    flights_.erase(it);
  }
  // Callbacks run outside the lock: a follower's unshared path re-executes
  // the request, which may take arbitrarily long and must not block new
  // flights from opening (including one for this same key).
  for (OnResult& cb : followers) cb(response, shareable);
  return static_cast<std::int64_t>(followers.size());
}

std::int64_t SingleFlight::inflight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(flights_.size());
}

}  // namespace sasynth
