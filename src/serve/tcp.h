// Minimal POSIX TCP transport for the synthesis service.
//
// The daemon binds the loopback interface only: sasynthd speaks an
// unauthenticated text protocol, so exposure beyond the host is a deployment
// decision (front it with a real ingress), not a default. Port 0 binds an
// ephemeral port, reported by port() — which is also how tests run a real
// client/server pair without colliding.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "serve/server.h"
#include "util/deadline.h"

namespace sasynth {

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and listens. On failure returns
  /// false with a message in `error`.
  bool listen_on(int port, std::string* error);

  /// The bound port (valid after listen_on succeeds).
  int port() const { return port_; }

  /// The listening fd (-1 before listen_on / after close_listener). The
  /// event loop registers it with its poller for non-blocking accepts; the
  /// blocking path never needs it.
  int fd() const { return fd_.load(std::memory_order_acquire); }

  /// Blocks for the next client; returns its fd, or -1 once the listener is
  /// closed (the shutdown path) or on a fatal error.
  int accept_client();

  /// Closes the listening socket; unblocks accept_client. Idempotent and
  /// safe to call while another thread is blocked in accept_client (the fd
  /// handoff is atomic — exactly one caller closes).
  void close_listener();

 private:
  std::atomic<int> fd_{-1};
  int port_ = 0;
};

/// Buffered line reader over a socket/pipe fd. Lines are '\n'-terminated;
/// a trailing unterminated line is delivered at clean EOF. A read *error* is
/// different from EOF: any buffered partial line is dropped (a truncated
/// request must never reach the parser as if it were complete), read_line
/// returns false, and failed() reports true.
///
/// With `timeout_ms` > 0 the reader waits in ~250 ms poll() ticks and gives
/// up once no byte has arrived for that long (the slow-loris guard: a client
/// holding a half-sent request cannot park a session thread forever). A
/// timeout counts in `io_timeouts_total` and ends the stream like a read
/// error. The optional `abort` predicate is checked every tick; when it
/// returns true the stream ends as a clean EOF — how a draining daemon
/// unparks sessions blocked on idle clients.
class FdLineReader {
 public:
  explicit FdLineReader(int fd, std::int64_t timeout_ms = 0,
                        std::function<bool()> abort = {})
      : fd_(fd), timeout_ms_(timeout_ms), abort_(std::move(abort)) {}

  /// False at EOF or on a read error; failed() distinguishes the two.
  bool read_line(std::string* out);

  /// True once a non-EINTR read error (or an I/O timeout) ended the stream.
  bool failed() const { return failed_; }

  /// True when the stream ended because the read timeout elapsed.
  bool timed_out() const { return timed_out_; }

 private:
  int fd_;
  std::int64_t timeout_ms_ = 0;  ///< 0 = wait forever
  std::function<bool()> abort_;
  std::string buffer_;
  bool eof_ = false;
  bool failed_ = false;
  bool timed_out_ = false;
};

/// Writes all of `data` to `fd`; false on error. Sockets are written with
/// send(MSG_NOSIGNAL) so a disconnected peer yields EPIPE here instead of a
/// process-killing SIGPIPE; non-socket fds fall back to write(2).
/// With `timeout_ms` > 0 each blocked stretch is bounded by poll(POLLOUT):
/// a peer that stops reading (full receive window) fails the write with
/// ETIMEDOUT and a tick in `io_timeouts_total` instead of wedging the
/// session's writer thread.
bool write_all_fd(int fd, const std::string& data, std::int64_t timeout_ms = 0);

/// Runs one server session over a connected socket and closes it. The first
/// failed write ends the session (the peer is gone; no work is done for
/// responses nobody can receive). Applies the server's io_timeout_ms to both
/// directions and wakes from idle reads when the server stops or drains.
/// Shared by the daemon's connection threads and the TCP tests.
void serve_fd_session(SynthServer& server, int fd);

}  // namespace sasynth
