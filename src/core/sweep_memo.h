// Cross-request memoization interface for the phase-1 sweep.
//
// A (mapping, shape) work item's reuse-strategy DFS is a pure function of
// the *sweep context* — every quantity the LeanModel and the BRAM budget
// read: loop-nest trip counts, access coefficient matrices, bytes per
// element, the device's BRAM/bandwidth constants, the assumed clock, and
// the pow2-middle / max-BRAM-util options. enumerate_phase1 renders that
// context to a canonical text (see sweep_context_text in dse.cpp) and a
// per-item text, and a SweepMemo implementation may answer two kinds of
// query against them:
//
//  * exact tier — the full context *including* trip counts plus the item.
//    A hit returns the DFS result verbatim (the optimal middle bounds, or
//    "nothing fits BRAM"), so the item skips its DFS entirely. Because the
//    key covers every input of the computation, a hit is bit-identical to
//    re-running it: responses stay a pure function of the request at any
//    cache state, even for sweeps truncated by a cancel token.
//
//  * hint tier — the context *without* trip counts. Layers that differ only
//    in their H/W (feature-map) dimensions share this key, so the optimal
//    middle bounds found for one layer seed the branch-and-bound floor of
//    the next. A hint is advisory: the caller re-evaluates the hinted
//    bounds on its own nest and uses the (achievable) result only to
//    tighten pruning — never as the answer — so exactness of the final
//    top-K is preserved (see docs/MODEL.md, "Dominance pruning").
//
// Implementations must be thread-safe (the sweep stores from worker
// threads) and collision-safe (verify key texts, not just hashes — the
// serve-layer SweepCache mirrors DesignCache's canonical-text check).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sasynth {

class SweepMemo {
 public:
  /// Exact-tier payload: the DFS outcome for one work item.
  struct ExactResult {
    bool found_fit = false;  ///< false = no middle bounds fit the BRAM budget
    std::vector<std::int64_t> best_s;  ///< optimal middle bounds when found
  };

  virtual ~SweepMemo() = default;

  /// Exact tier: returns true and fills `out` when (context, item) was
  /// stored before. `context` must include trip counts.
  virtual bool lookup_exact(const std::string& context,
                            const std::string& item, ExactResult* out) = 0;
  virtual void store_exact(const std::string& context, const std::string& item,
                           const ExactResult& result) = 0;

  /// Hint tier: returns true and fills `hint_s` with the middle bounds a
  /// structurally identical item (same `context` sans trips, same item
  /// text) solved to on some other nest. Advisory only.
  virtual bool lookup_hint(const std::string& context, const std::string& item,
                           std::vector<std::int64_t>* hint_s) = 0;
  virtual void store_hint(const std::string& context, const std::string& item,
                          const std::vector<std::int64_t>& best_s) = 0;
};

}  // namespace sasynth
