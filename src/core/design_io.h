// Textual save/load of design points.
//
// The two-phase flow naturally splits across tool invocations (phase 1
// emits candidates, phase 2's synthesis runs elsewhere, §4/Fig. 5), so
// design points need a stable on-disk form. The format is a line-oriented
// text block:
//
//   sasynth-design v1
//   device <name>                  (optional)
//   mapping row=<loop> col=<loop> vec=<loop>
//   shape <rows> <cols> <vec>
//   middle <s_0> <s_1> ... <s_n-1>
//
// Loads are validated against the target nest; malformed input produces an
// error message, never a partially initialized design.
#pragma once

#include <string>

#include "core/design_point.h"
#include "loopnest/loop_nest.h"

namespace sasynth {

/// Serializes a design point (the original three-line body; no device line —
/// this is the wire form cached serve responses pin byte for byte).
std::string save_design_text(const DesignPoint& design);

/// Serializes with a `device <name>` line after the magic, recording which
/// device the design was synthesized for. Loaders that know their target
/// device can reject mismatches (sasynth_cli --fixed-design does).
std::string save_design_text(const DesignPoint& design,
                             const std::string& device_name);

enum class DesignLoadMode {
  /// The design must fully validate against the nest, including the
  /// block-trip economy cap — the bespoke path.
  kStrict,
  /// Structural validation only (validate_folded): the design may come from
  /// a different layer and be folded onto this nest by src/deploy.
  kFolded,
};

struct DesignLoadResult {
  bool ok = false;
  std::string error;
  DesignPoint design;
  std::string device_name;  ///< empty when the text carries no device line
};

/// Parses and validates against `nest` (loop count, bounds).
DesignLoadResult load_design_text(const std::string& text, const LoopNest& nest,
                                  DesignLoadMode mode = DesignLoadMode::kStrict);

}  // namespace sasynth
