// Textual save/load of design points.
//
// The two-phase flow naturally splits across tool invocations (phase 1
// emits candidates, phase 2's synthesis runs elsewhere, §4/Fig. 5), so
// design points need a stable on-disk form. The format is a line-oriented
// text block:
//
//   sasynth-design v1
//   mapping row=<loop> col=<loop> vec=<loop>
//   shape <rows> <cols> <vec>
//   middle <s_0> <s_1> ... <s_n-1>
//
// Loads are validated against the target nest; malformed input produces an
// error message, never a partially initialized design.
#pragma once

#include <string>

#include "core/design_point.h"
#include "loopnest/loop_nest.h"

namespace sasynth {

/// Serializes a design point.
std::string save_design_text(const DesignPoint& design);

struct DesignLoadResult {
  bool ok = false;
  std::string error;
  DesignPoint design;
};

/// Parses and validates against `nest` (loop count, bounds).
DesignLoadResult load_design_text(const std::string& text,
                                  const LoopNest& nest);

}  // namespace sasynth
