#include "core/roofline.h"

#include <algorithm>

#include "core/perf_model.h"
#include "core/resource_model.h"
#include "util/strings.h"

namespace sasynth {

RooflinePoint roofline_point(const LoopNest& nest, const DesignPoint& design,
                             const FpgaDevice& device, DataType dtype,
                             double freq_mhz) {
  RooflinePoint point;
  const TilingSpec& tiling = design.tiling();
  const double eff = tiling.efficiency(nest);

  double block_bytes = 0.0;
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    block_bytes +=
        static_cast<double>(tiling.footprint_elems(nest.accesses()[a].access)) *
        bytes_per_element(dtype, nest, a);
  }
  const double eff_ops_per_block =
      eff * 2.0 * static_cast<double>(tiling.macs_per_block());

  point.operational_intensity = eff_ops_per_block / block_bytes;
  point.compute_roof_gops =
      eff * static_cast<double>(design.num_lanes()) * 2.0 * freq_mhz * 1e-3;
  point.memory_roof_gops = point.operational_intensity * device.bw_total_gbs;
  point.attainable_gops =
      std::min(point.compute_roof_gops, point.memory_roof_gops);
  point.ridge_intensity = point.compute_roof_gops / device.bw_total_gbs;
  point.memory_bound = point.memory_roof_gops < point.compute_roof_gops;
  return point;
}

std::vector<BandwidthSweepSample> sweep_bandwidth(
    const LoopNest& nest, const DesignPoint& design, const FpgaDevice& device,
    DataType dtype, double freq_mhz, const std::vector<double>& bandwidths) {
  std::vector<BandwidthSweepSample> samples;
  samples.reserve(bandwidths.size());
  for (const double bw : bandwidths) {
    FpgaDevice d = device;
    d.bw_total_gbs = bw;
    d.bw_port_gbs = std::min(device.bw_port_gbs, bw);
    const PerfEstimate perf =
        estimate_performance(nest, design, d, dtype, freq_mhz);
    samples.push_back(
        BandwidthSweepSample{bw, perf.throughput_gops, perf.memory_bound});
  }
  return samples;
}

std::string RooflinePoint::summary() const {
  return strformat(
      "intensity %.1f ops/B; roofs: compute %.1f, memory %.1f Gops -> "
      "attainable %.1f Gops (%s-bound; ridge at %.1f ops/B)",
      operational_intensity, compute_roof_gops, memory_roof_gops,
      attainable_gops, memory_bound ? "memory" : "compute", ridge_intensity);
}

}  // namespace sasynth
