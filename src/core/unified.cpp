#include "core/unified.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <optional>

#include "core/lean_batch.h"
#include "core/mapping.h"
#include "fpga/freq_model.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math_util.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sasynth {

LoopNest unified_envelope_nest(const std::vector<LoopNest>& nests) {
  assert(!nests.empty());
  LoopNest env;
  for (std::size_t l = 0; l < nests.front().num_loops(); ++l) {
    std::int64_t trip = 1;
    for (const LoopNest& nest : nests) trip = std::max(trip, nest.loop(l).trip);
    env.add_loop(nests.front().loop(l).name, trip);
  }
  for (const ArrayAccess& a : nests.front().accesses()) env.add_access(a);
  return env;
}

namespace {

/// Aggregate over layers for one fully specified design.
struct AggregateEval {
  double total_latency_ms = 0.0;
  double aggregate_gops = 0.0;
  double dram_traffic_bytes = 0.0;
  std::int64_t max_bram = 0;
  bool valid = false;
};

AggregateEval evaluate_aggregate(const Network& net,
                                 const std::vector<LoopNest>& nests,
                                 const DesignPoint& design,
                                 const FpgaDevice& device, DataType dtype,
                                 double freq_mhz, std::int64_t bram_budget) {
  AggregateEval out;
  double latency_ms = 0.0;
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const PerfEstimate perf =
        estimate_performance(nests[i], design, device, dtype, freq_mhz);
    if (perf.throughput_gops <= 0.0) return out;
    latency_ms += layer_latency_ms(net.layers[i], perf);
    out.max_bram = std::max(
        out.max_bram, bram_usage_blocks(nests[i], design, device, dtype));
    double block_bytes = 0.0;
    for (std::size_t a = 0; a < nests[i].num_accesses(); ++a) {
      block_bytes += static_cast<double>(design.tiling().footprint_elems(
                         nests[i].accesses()[a].access)) *
                     bytes_per_element(dtype, nests[i], a);
    }
    out.dram_traffic_bytes +=
        block_bytes * static_cast<double>(design.tiling().num_blocks(nests[i])) *
        static_cast<double>(net.layers[i].groups);
  }
  if (out.max_bram > bram_budget) return out;
  out.total_latency_ms = latency_ms;
  out.aggregate_gops =
      static_cast<double>(net.total_ops()) / (latency_ms * 1e-3) * 1e-9;
  out.valid = true;
  return out;
}

}  // namespace

UnifiedDesign evaluate_unified_design(const Network& net,
                                      const DesignPoint& design,
                                      const FpgaDevice& device, DataType dtype,
                                      double freq_mhz) {
  UnifiedDesign result;
  result.design = design;
  result.realized_freq_mhz = freq_mhz;
  double latency_ms = 0.0;
  std::int64_t max_bram = 0;
  std::size_t worst_layer = 0;
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const LoopNest nest = build_conv_nest(net.layers[i]);
    LayerPerf lp;
    lp.layer = net.layers[i].name;
    lp.perf = estimate_performance(nest, design, device, dtype, freq_mhz);
    lp.latency_ms = layer_latency_ms(net.layers[i], lp.perf);
    latency_ms += lp.latency_ms;
    const std::int64_t bram = bram_usage_blocks(nest, design, device, dtype);
    if (bram > max_bram) {
      max_bram = bram;
      worst_layer = i;
    }
    result.per_layer.push_back(std::move(lp));
  }
  const LoopNest worst_nest = build_conv_nest(net.layers[worst_layer]);
  result.resources = model_resources(worst_nest, design, device, dtype);
  result.total_latency_ms = latency_ms;
  result.aggregate_gops =
      static_cast<double>(net.total_ops()) / (latency_ms * 1e-3) * 1e-9;
  result.valid = true;
  return result;
}

std::vector<UnifiedCandidate> enumerate_unified_candidates(
    const Network& net, const FpgaDevice& device, DataType dtype,
    const UnifiedOptions& options, bool* cancelled_out) {
  if (cancelled_out != nullptr) *cancelled_out = false;
  std::vector<UnifiedCandidate> none;
  if (net.layers.empty()) return none;

  std::vector<LoopNest> nests;
  nests.reserve(net.layers.size());
  for (const ConvLayerDesc& layer : net.layers) {
    nests.push_back(build_conv_nest(layer));
  }
  const LoopNest env = unified_envelope_nest(nests);
  const ReuseMatrix reuse = analyze_reuse(env);
  const std::vector<SystolicMapping> mappings =
      enumerate_feasible_mappings(env, reuse);

  const DseOptions& dse = options.dse;
  const double freq = dse.assumed_freq_mhz;

  // One pool serves both stages. Determinism at any thread count comes from
  // indexed result slots: workers write only their own items, and every
  // merge below reads slots in item order — the same order the serial loops
  // produced.
  ThreadPool pool(options.jobs > 0 ? options.jobs : dse.jobs);

  // Stage 1: shortlist (mapping, shape) pairs by the compute-bound score
  // (sum of per-layer latencies assuming s = 1 efficiency — an optimistic
  // but shape-faithful proxy). Parallel over pairs; each body scores all
  // layers for its pair.
  // Cooperative cancellation (options.dse.cancel): polled at item
  // granularity in every stage below. Items the cut skips leave their slots
  // untouched, so a cancelled selection is the best of the prefix actually
  // scored — same contract as DseStatus::kCancelled in the per-layer DSE.
  const CancelToken& cancel = dse.cancel;
  std::atomic<bool> cancelled{false};

  struct Scored {
    SystolicMapping mapping;
    ArrayShape shape;
    double score = -1.0;  ///< aggregate compute-bound Gops; < 0 = not scored
  };
  std::vector<std::pair<SystolicMapping, ArrayShape>> pairs;
  for (const SystolicMapping& mapping : mappings) {
    const std::vector<ArrayShape> shapes =
        enumerate_shapes(env, mapping, device, dtype, dse, nullptr);
    for (const ArrayShape& shape : shapes) pairs.emplace_back(mapping, shape);
  }
  std::vector<Scored> scored(pairs.size());
  {
    obs::ScopedSpan shortlist_span("unified.shortlist", "unified");
    shortlist_span.arg("pairs", static_cast<std::int64_t>(pairs.size()));
    // Per-layer compute-bound rate of every pair, batched through the SoA
    // kernel (the probe DesignPoint + TilingSpec the scalar loop built per
    // (pair, layer) reduced to one exact int64 product and one vectorized
    // flat loop per layer).
    std::vector<std::vector<double>> layer_gops(net.layers.size());
    {
      ShapeBatch batch;
      batch.resize(pairs.size());
      std::vector<std::int64_t> inner;
      for (std::size_t i = 0; i < net.layers.size(); ++i) {
        inner.assign(nests[i].num_loops(), 1);
        for (std::size_t p = 0; p < pairs.size(); ++p) {
          const SystolicMapping& mapping = pairs[p].first;
          const ArrayShape& shape = pairs[p].second;
          std::fill(inner.begin(), inner.end(), 1);
          inner[mapping.row_loop] = shape.rows;
          inner[mapping.col_loop] = shape.cols;
          inner[mapping.vec_loop] = shape.vec;
          batch.lanes[p] = static_cast<double>(shape.num_lanes());
          batch.executed[p] = static_cast<double>(
              executed_iterations_for_inner(nests[i], inner));
        }
        batch_pt_bounds(batch, static_cast<double>(nests[i].total_iterations()),
                        freq * 1e-3);
        layer_gops[i] = batch.pt_gops;
      }
    }
    pool.for_each(
        static_cast<std::int64_t>(pairs.size()),
        [&](std::int64_t begin, std::int64_t end, int worker) {
          obs::ScopedSpan shard("unified.shortlist.shard", "unified");
          shard.arg("begin", begin);
          shard.arg("end", end);
          shard.arg("worker", worker);
          for (std::int64_t p = begin; p < end; ++p) {
            if (cancel.cut(p)) {
              cancelled.store(true, std::memory_order_relaxed);
              break;
            }
            double latency_s = 0.0;
            for (std::size_t i = 0; i < net.layers.size(); ++i) {
              const double gops = layer_gops[i][static_cast<std::size_t>(p)];
              latency_s +=
                  static_cast<double>(net.layers[i].total_ops()) / (gops * 1e9);
            }
            scored[static_cast<std::size_t>(p)] = Scored{
                pairs[static_cast<std::size_t>(p)].first,
                pairs[static_cast<std::size_t>(p)].second,
                static_cast<double>(net.total_ops()) / latency_s * 1e-9};
          }
        });
  }
  // Drop slots the cancellation cut never scored: a default-constructed
  // Scored must not reach the shortlist as if it were a real pair.
  scored.erase(std::remove_if(scored.begin(), scored.end(),
                              [](const Scored& s) { return s.score < 0.0; }),
               scored.end());
  if (scored.empty()) {
    if (cancelled_out != nullptr) {
      *cancelled_out = cancelled.load() || cancel.cancelled();
    }
    return none;
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.score > b.score; });
  const std::size_t shortlist = std::min<std::size_t>(
      scored.size(), static_cast<std::size_t>(options.shape_shortlist));

  // Stage 2: unified reuse-strategy search for each shortlisted pair.
  const std::int64_t bram_budget = static_cast<std::int64_t>(
      dse.max_bram_util * static_cast<double>(device.bram_blocks));

  // Stage 2 is the expensive half (a DFS over middle bounds re-evaluating
  // every layer at each leaf); each shortlist entry is independent, so the
  // entries fan out across the pool into per-entry slots.
  std::vector<std::optional<UnifiedCandidate>> entry_best(shortlist);
  auto search_entry = [&](std::size_t idx) {
    const SystolicMapping& mapping = scored[idx].mapping;
    const ArrayShape& shape = scored[idx].shape;
    const std::size_t n = env.num_loops();
    std::vector<std::int64_t> inner(n, 1);
    inner[mapping.row_loop] = shape.rows;
    inner[mapping.col_loop] = shape.cols;
    inner[mapping.vec_loop] = shape.vec;

    std::vector<std::vector<std::int64_t>> cand(n);
    for (std::size_t l = 0; l < n; ++l) {
      cand[l] = dse.pow2_middle
                    ? pow2_candidates_covering(ceil_div(env.loop(l).trip, inner[l]))
                    : [&] {
                        std::vector<std::int64_t> all;
                        for (std::int64_t v = 1;
                             v <= ceil_div(env.loop(l).trip, inner[l]); ++v) {
                          all.push_back(v);
                        }
                        return all;
                      }();
    }

    std::vector<std::int64_t> current(n, 1);
    UnifiedCandidate best;
    bool found = false;
    auto dfs = [&](auto&& self, std::size_t depth) -> void {
      if (depth == n) {
        const DesignPoint design(nests.front(), mapping, shape,
                                 std::vector<std::int64_t>(current));
        const AggregateEval eval = evaluate_aggregate(
            net, nests, design, device, dtype, freq, bram_budget);
        if (!eval.valid) return;
        const bool better =
            !found || eval.aggregate_gops > best.est_gops + 1e-12 ||
            (eval.aggregate_gops > best.est_gops - 1e-12 &&
             (eval.dram_traffic_bytes < best.dram_traffic_bytes * (1.0 - 1e-12) ||
              (eval.dram_traffic_bytes <=
                   best.dram_traffic_bytes * (1.0 + 1e-12) &&
               eval.max_bram < best.max_bram)));
        if (better) {
          best = UnifiedCandidate{design, eval.aggregate_gops,
                                  eval.dram_traffic_bytes, eval.max_bram};
          found = true;
        }
        return;
      }
      for (const std::int64_t s : cand[depth]) {
        current[depth] = s;
        // Monotone BRAM prune: minimal suffix on the first layer's nest.
        std::vector<std::int64_t> mids(n, 1);
        for (std::size_t l = 0; l <= depth; ++l) mids[l] = current[l];
        const DesignPoint probe(nests.front(), mapping, shape, std::move(mids));
        if (bram_usage_blocks(nests.front(), probe, device, dtype) >
            bram_budget) {
          break;
        }
        self(self, depth + 1);
      }
      current[depth] = 1;
    };
    dfs(dfs, 0);
    if (found) entry_best[idx] = std::move(best);
  };
  {
    obs::ScopedSpan search_span("unified.search", "unified");
    search_span.arg("shortlist", static_cast<std::int64_t>(shortlist));
    pool.for_each(static_cast<std::int64_t>(shortlist),
                  [&](std::int64_t begin, std::int64_t end, int worker) {
                    obs::ScopedSpan shard("unified.search.shard", "unified");
                    shard.arg("begin", begin);
                    shard.arg("end", end);
                    shard.arg("worker", worker);
                    for (std::int64_t i = begin; i < end; ++i) {
                      // Deadline/explicit-cancel poll per shortlist entry
                      // (the deterministic cut indexes stage-1 pairs, so it
                      // does not apply here).
                      if (cancel.cancelled()) {
                        cancelled.store(true, std::memory_order_relaxed);
                        return;
                      }
                      search_entry(static_cast<std::size_t>(i));
                    }
                  });
  }

  std::vector<UnifiedCandidate> candidates;
  candidates.reserve(shortlist);
  for (std::optional<UnifiedCandidate>& e : entry_best) {
    if (e.has_value()) candidates.push_back(std::move(*e));
  }
  if (candidates.empty()) {
    if (cancelled_out != nullptr) {
      *cancelled_out = cancelled.load() || cancel.cancelled();
    }
    return none;
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const UnifiedCandidate& a, const UnifiedCandidate& b) {
              if (a.est_gops != b.est_gops) return a.est_gops > b.est_gops;
              return a.max_bram < b.max_bram;
            });
  if (cancelled_out != nullptr) {
    *cancelled_out = cancelled.load() || cancel.cancelled();
  }
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& r = obs::MetricsRegistry::global();
    r.counter("unified_pairs_total")
        .add(static_cast<std::int64_t>(pairs.size()));
    r.counter("unified_shortlist_total")
        .add(static_cast<std::int64_t>(shortlist));
  }
  return candidates;
}

UnifiedDesign select_unified_design(const Network& net,
                                    const FpgaDevice& device, DataType dtype,
                                    const UnifiedOptions& options) {
  obs::ScopedSpan select_span("unified.select", "unified");
  UnifiedDesign failure;
  if (net.layers.empty()) return failure;

  const DseOptions& dse = options.dse;
  const CancelToken& cancel = dse.cancel;
  bool enum_cancelled = false;
  const std::vector<UnifiedCandidate> candidates = enumerate_unified_candidates(
      net, device, dtype, options, &enum_cancelled);
  std::atomic<bool> cancelled{enum_cancelled};
  if (candidates.empty()) {
    failure.cancelled = cancelled.load() || cancel.cancelled();
    return failure;
  }

  // Stage 3 (phase 2 of Fig. 5): pseudo-P&R the top-K, pick best realized.
  const std::size_t keep = std::min<std::size_t>(
      candidates.size(), static_cast<std::size_t>(dse.top_k));
  const double freq = dse.assumed_freq_mhz;
  obs::ScopedSpan phase2_span("unified.phase2", "unified");
  phase2_span.arg("candidates", static_cast<std::int64_t>(keep));
  UnifiedDesign best_result;
  for (std::size_t i = 0; i < keep; ++i) {
    if (cancel.cancelled()) {
      cancelled.store(true, std::memory_order_relaxed);
      break;
    }
    const DesignPoint& design = candidates[i].design;
    // Resource report from the worst-case layer for the frequency model.
    UnifiedDesign eval =
        evaluate_unified_design(net, design, device, dtype, freq);
    if (dse.enforce_soft_logic && !eval.resources.report.fits()) continue;
    const double realized = pseudo_pnr_frequency_mhz(
        device, eval.resources.report, design.signature());
    UnifiedDesign realized_eval =
        evaluate_unified_design(net, design, device, dtype, realized);
    if (!best_result.valid ||
        realized_eval.aggregate_gops > best_result.aggregate_gops) {
      best_result = std::move(realized_eval);
    }
  }
  best_result.cancelled = cancelled.load() || cancel.cancelled();
  if (obs::metrics_enabled()) {
    obs::MetricsRegistry& r = obs::MetricsRegistry::global();
    r.counter("unified_runs_total").add(1);
    if (best_result.cancelled) r.counter("unified_cancelled_total").add(1);
  }
  return best_result;
}

std::string UnifiedDesign::summary(const Network& net) const {
  std::string out = strformat(
      "%s unified design: shape=%s @%.1f MHz -> %.1f Gops, %.2f ms/image\n",
      net.name.c_str(), design.shape().to_string().c_str(), realized_freq_mhz,
      aggregate_gops, total_latency_ms);
  out += "  " + resources.report.summary() + "\n";
  for (const LayerPerf& lp : per_layer) {
    out += strformat("  %-10s %8.1f Gops  eff %6.2f%%  %8.3f ms%s\n",
                     lp.layer.c_str(), lp.perf.throughput_gops,
                     lp.perf.eff * 100.0, lp.latency_ms,
                     lp.perf.memory_bound ? "  [memory-bound]" : "");
  }
  return out;
}

}  // namespace sasynth
