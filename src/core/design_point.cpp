#include "core/design_point.h"

#include <cassert>

#include "util/strings.h"

namespace sasynth {

std::string ArrayShape::to_string() const {
  return strformat("(%lld,%lld,%lld)", static_cast<long long>(rows),
                   static_cast<long long>(cols), static_cast<long long>(vec));
}

bool ArrayShape::operator==(const ArrayShape& other) const {
  return rows == other.rows && cols == other.cols && vec == other.vec;
}

DesignPoint::DesignPoint(const LoopNest& nest, SystolicMapping mapping,
                         ArrayShape shape, std::vector<std::int64_t> middle)
    : mapping_(mapping), shape_(shape) {
  assert(middle.size() == nest.num_loops());
  std::vector<std::int64_t> inner(nest.num_loops(), 1);
  inner[mapping.row_loop] = shape.rows;
  inner[mapping.col_loop] = shape.cols;
  inner[mapping.vec_loop] = shape.vec;
  tiling_ = TilingSpec(std::move(middle), std::move(inner));
}

void DesignPoint::set_middle_bounds(std::vector<std::int64_t> middle) {
  assert(middle.size() == tiling_.num_loops());
  tiling_ = TilingSpec(std::move(middle),
                       std::vector<std::int64_t>(tiling_.inner_bounds()));
}

std::string DesignPoint::signature() const {
  std::string sig = mapping_.signature() + "_t" + shape_.to_string() + "_s(";
  for (std::size_t l = 0; l < tiling_.num_loops(); ++l) {
    if (l > 0) sig += ",";
    sig += std::to_string(tiling_.middle(l));
  }
  sig += ")";
  return sig;
}

std::string DesignPoint::to_string(const LoopNest& nest) const {
  return mapping_.to_string(nest) + " shape=" + shape_.to_string() + " " +
         tiling_.to_string();
}

std::string DesignPoint::validate(const LoopNest& nest) const {
  if (mapping_.row_loop >= nest.num_loops() ||
      mapping_.col_loop >= nest.num_loops() ||
      mapping_.vec_loop >= nest.num_loops()) {
    return "mapping loop out of range";
  }
  if (shape_.rows < 1 || shape_.cols < 1 || shape_.vec < 1) {
    return "array shape extents must be >= 1";
  }
  return tiling_.validate(nest);
}

std::string DesignPoint::validate_folded(const LoopNest& nest) const {
  if (mapping_.row_loop >= nest.num_loops() ||
      mapping_.col_loop >= nest.num_loops() ||
      mapping_.vec_loop >= nest.num_loops()) {
    return "mapping loop out of range";
  }
  if (shape_.rows < 1 || shape_.cols < 1 || shape_.vec < 1) {
    return "array shape extents must be >= 1";
  }
  return tiling_.validate_structure(nest);
}

bool DesignPoint::operator==(const DesignPoint& other) const {
  return mapping_ == other.mapping_ && shape_ == other.shape_ &&
         tiling_ == other.tiling_;
}

}  // namespace sasynth
