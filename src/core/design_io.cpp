#include "core/design_io.h"

#include <cerrno>
#include <cstdlib>

#include "util/strings.h"

namespace sasynth {

namespace {
constexpr const char* kMagic = "sasynth-design v1";

// Strict integer parse: the whole token must be a number, no silent
// garbage->0 coercion (std::atoll would accept "12x" and "abc").
bool parse_strict_int64(const std::string& token, std::int64_t* out) {
  if (token.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}
}  // namespace

std::string save_design_text(const DesignPoint& design,
                             const std::string& device_name) {
  std::string out = std::string(kMagic) + "\n";
  if (!device_name.empty()) out += "device " + device_name + "\n";
  out += strformat("mapping row=%zu col=%zu vec=%zu\n",
                   design.mapping().row_loop, design.mapping().col_loop,
                   design.mapping().vec_loop);
  out += strformat("shape %lld %lld %lld\n",
                   static_cast<long long>(design.shape().rows),
                   static_cast<long long>(design.shape().cols),
                   static_cast<long long>(design.shape().vec));
  out += "middle";
  for (std::size_t l = 0; l < design.tiling().num_loops(); ++l) {
    out += " " + std::to_string(design.tiling().middle(l));
  }
  out += "\n";
  return out;
}

std::string save_design_text(const DesignPoint& design) {
  return save_design_text(design, std::string());
}

DesignLoadResult load_design_text(const std::string& text, const LoopNest& nest,
                                  DesignLoadMode mode) {
  DesignLoadResult result;
  auto fail = [&](const std::string& msg) {
    result.error = msg;
    return result;
  };

  const std::vector<std::string> lines = split(text, '\n');
  std::size_t i = 0;
  auto next_line = [&]() -> std::string {
    while (i < lines.size()) {
      const std::string line = trim(lines[i++]);
      if (!line.empty()) return line;
    }
    return "";
  };

  if (next_line() != kMagic) return fail("missing 'sasynth-design v1' header");

  // Optional `device <name>` line, then mapping row=.. col=.. vec=..
  std::string line = next_line();
  {
    const std::vector<std::string> parts = split_ws(line);
    if (!parts.empty() && parts[0] == "device") {
      if (parts.size() != 2) return fail("malformed device line");
      result.device_name = parts[1];
      line = next_line();
    }
  }
  const std::vector<std::string> mapping_parts = split_ws(line);
  if (mapping_parts.size() != 4 || mapping_parts[0] != "mapping") {
    return fail("malformed mapping line");
  }
  SystolicMapping mapping;
  auto parse_role = [&](const std::string& part, const char* key,
                        std::size_t* out) {
    const std::string prefix = std::string(key) + "=";
    if (!starts_with(part, prefix)) return false;
    char* end = nullptr;
    const long v = std::strtol(part.c_str() + prefix.size(), &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) return false;
    *out = static_cast<std::size_t>(v);
    return true;
  };
  if (!parse_role(mapping_parts[1], "row", &mapping.row_loop) ||
      !parse_role(mapping_parts[2], "col", &mapping.col_loop) ||
      !parse_role(mapping_parts[3], "vec", &mapping.vec_loop)) {
    return fail("malformed mapping roles");
  }
  if (mapping.row_loop >= nest.num_loops() ||
      mapping.col_loop >= nest.num_loops() ||
      mapping.vec_loop >= nest.num_loops()) {
    return fail("mapping loop index out of range for this nest");
  }

  // shape r c v
  const std::vector<std::string> shape_parts = split_ws(next_line());
  if (shape_parts.size() != 4 || shape_parts[0] != "shape") {
    return fail("malformed shape line");
  }
  ArrayShape shape;
  if (!parse_strict_int64(shape_parts[1], &shape.rows) ||
      !parse_strict_int64(shape_parts[2], &shape.cols) ||
      !parse_strict_int64(shape_parts[3], &shape.vec)) {
    return fail("shape extents must be integers");
  }
  if (shape.rows < 1 || shape.cols < 1 || shape.vec < 1) {
    return fail("shape extents must be >= 1");
  }

  // middle s...
  const std::vector<std::string> middle_parts = split_ws(next_line());
  if (middle_parts.empty() || middle_parts[0] != "middle") {
    return fail("malformed middle line");
  }
  if (middle_parts.size() != nest.num_loops() + 1) {
    return fail("middle bounds count does not match the nest");
  }
  std::vector<std::int64_t> middle;
  for (std::size_t p = 1; p < middle_parts.size(); ++p) {
    std::int64_t v = 0;
    if (!parse_strict_int64(middle_parts[p], &v)) {
      return fail("middle bounds must be integers");
    }
    if (v < 1) return fail("middle bounds must be >= 1");
    middle.push_back(v);
  }

  DesignPoint design(nest, mapping, shape, std::move(middle));
  const std::string validation = mode == DesignLoadMode::kStrict
                                     ? design.validate(nest)
                                     : design.validate_folded(nest);
  if (!validation.empty()) return fail("invalid design: " + validation);
  result.design = std::move(design);
  result.ok = true;
  return result;
}

}  // namespace sasynth
