#include "core/perf_model.h"

#include <algorithm>
#include <cassert>

#include "util/math_util.h"
#include "util/strings.h"

namespace sasynth {

double dsp_efficiency(const LoopNest& nest, const DesignPoint& design) {
  return design.tiling().efficiency(nest);
}

std::int64_t executed_iterations_for_inner(
    const LoopNest& nest, const std::vector<std::int64_t>& inner) {
  std::int64_t executed = 1;
  for (std::size_t l = 0; l < nest.num_loops(); ++l) {
    executed =
        sat_mul(executed, ceil_div(nest.loop(l).trip, inner[l]) * inner[l]);
  }
  return executed;
}

double phase1_pt_bound_gops(const LoopNest& nest,
                            const std::vector<std::int64_t>& inner,
                            std::int64_t lanes, double freq_mhz) {
  // Same expression shape as estimate_performance: eff from the int64
  // executed product, then eff * lanes * 2.0 * freq_ghz left to right.
  const double eff = static_cast<double>(nest.total_iterations()) /
                     static_cast<double>(executed_iterations_for_inner(nest, inner));
  const double freq_ghz = freq_mhz * 1e-3;
  return eff * static_cast<double>(lanes) * 2.0 * freq_ghz;
}

PerfEstimate estimate_performance(const LoopNest& nest,
                                  const DesignPoint& design,
                                  const FpgaDevice& device, DataType dtype,
                                  double freq_mhz) {
  PerfEstimate perf;
  const TilingSpec& tiling = design.tiling();
  perf.freq_mhz = freq_mhz;
  perf.eff = tiling.efficiency(nest);

  // Eq. 8: every lane completes one multiply + one accumulate per cycle.
  const double lanes = static_cast<double>(design.num_lanes());
  const double freq_ghz = freq_mhz * 1e-3;
  perf.pt_gops = perf.eff * lanes * 2.0 * freq_ghz;

  // Eq. 10: effective ops per block over that block's transfer time.
  const double eff_ops_per_block =
      perf.eff * 2.0 * static_cast<double>(tiling.macs_per_block());
  double total_bytes = 0.0;
  perf.mt_port_gops.clear();
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    const double bytes =
        static_cast<double>(tiling.footprint_elems(nest.accesses()[a].access)) *
        bytes_per_element(dtype, nest, a);
    total_bytes += bytes;
    // Port time in ns = bytes / (GB/s); rate in Gops = ops / ns.
    const double port_time_ns = bytes / device.bw_port_gbs;
    perf.mt_port_gops.push_back(eff_ops_per_block / port_time_ns);
  }
  const double total_time_ns = total_bytes / device.bw_total_gbs;
  perf.mt_total_gops = eff_ops_per_block / total_time_ns;

  // Eq. 9.
  perf.mt_gops = perf.mt_total_gops;
  for (const double port : perf.mt_port_gops) {
    perf.mt_gops = std::min(perf.mt_gops, port);
  }

  // Eq. 7.
  perf.throughput_gops = std::min(perf.pt_gops, perf.mt_gops);
  perf.memory_bound = perf.mt_gops < perf.pt_gops;

  perf.num_blocks = tiling.num_blocks(nest);
  perf.cycles_per_block = tiling.cycles_per_block();
  perf.fill_drain_cycles = design.shape().rows + design.shape().cols - 2;
  return perf;
}

FoldedPerfEstimate estimate_folded_performance(const LoopNest& nest,
                                               const DesignPoint& design,
                                               const FpgaDevice& device,
                                               DataType dtype,
                                               double freq_mhz) {
  assert(design.validate_folded(nest).empty());
  FoldedPerfEstimate out;
  out.perf = estimate_performance(nest, design, device, dtype, freq_mhz);
  out.effective_iterations = nest.total_iterations();
  out.executed_iterations = design.tiling().executed_iterations(nest);
  out.padded_iterations = out.executed_iterations - out.effective_iterations;
  out.waste_ratio = static_cast<double>(out.padded_iterations) /
                    static_cast<double>(out.executed_iterations);
  return out;
}

std::string FoldedPerfEstimate::summary() const {
  return perf.summary() +
         strformat(" waste=%.2f%% (%lld of %lld iterations padded)",
                   waste_ratio * 100.0,
                   static_cast<long long>(padded_iterations),
                   static_cast<long long>(executed_iterations));
}

double layer_latency_ms(const ConvLayerDesc& layer, const PerfEstimate& perf) {
  assert(perf.throughput_gops > 0.0);
  const double ops = static_cast<double>(layer.total_ops());
  return ops / (perf.throughput_gops * 1e9) * 1e3;
}

std::int64_t modeled_compute_cycles(const LoopNest& nest,
                                    const DesignPoint& design) {
  const TilingSpec& tiling = design.tiling();
  // Boundary blocks clip their middle loops, so the steady-state cycle count
  // is the total wavefront count, not blocks * full-block wavefronts.
  const std::int64_t steady = tiling.total_wavefronts(nest);
  const std::int64_t skew = design.shape().rows + design.shape().cols - 2;
  return steady + skew;
}

std::string PerfEstimate::summary() const {
  return strformat(
      "T=%.1f Gops (PT=%.1f, MT=%.1f%s) eff=%.2f%% @%.1f MHz, %lld blocks x "
      "%lld cycles",
      throughput_gops, pt_gops, mt_gops, memory_bound ? ", memory-bound" : "",
      eff * 100.0, freq_mhz, static_cast<long long>(num_blocks),
      static_cast<long long>(cycles_per_block));
}

}  // namespace sasynth
