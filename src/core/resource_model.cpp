#include "core/resource_model.h"

#include <cassert>
#include <cmath>

#include "util/math_util.h"
#include "util/strings.h"

namespace sasynth {

double bytes_per_element(DataType dtype, const LoopNest& nest,
                         std::size_t access_index) {
  const DataTypeInfo& info = data_type_info(dtype);
  const ArrayAccess& access = nest.accesses()[access_index];
  if (access.role == AccessRole::kReduce) return info.pixel_bytes();
  // Heuristic by canonical name: the weight operand is the one whose access
  // involves the reduction array's invariant loops; for the conv nest it is
  // simply named "W". Unknown reads default to pixel width.
  if (access.access.array == "W" || access.access.array == "w") {
    return info.weight_bytes();
  }
  return info.pixel_bytes();
}

ResourceUsage model_resources(const LoopNest& nest, const DesignPoint& design,
                              const FpgaDevice& device, DataType dtype) {
  ResourceUsage usage;
  usage.lanes = design.num_lanes();
  usage.dsp_blocks = device_dsp_blocks_for_macs(device, dtype, usage.lanes);

  const TilingSpec& tiling = design.tiling();
  std::int64_t total_blocks = 0;
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    BufferUsage buf;
    buf.array = nest.accesses()[a].access.array;
    buf.footprint_elems = tiling.footprint_elems(nest.accesses()[a].access);
    buf.depth_pow2 = round_up_pow2(buf.footprint_elems);
    buf.bytes = 2.0 * static_cast<double>(buf.depth_pow2) *
                bytes_per_element(dtype, nest, a);
    buf.bram_blocks =
        static_cast<std::int64_t>(
            std::ceil(buf.bytes / static_cast<double>(device.bram_bytes()))) +
        device.bram_const_per_buffer;
    total_blocks += buf.bram_blocks;
    usage.buffers.push_back(buf);
  }
  const std::int64_t num_pes = design.shape().num_pes();
  total_blocks += static_cast<std::int64_t>(
      std::ceil(device.bram_per_pe * static_cast<double>(num_pes)));
  usage.bram_blocks = total_blocks;

  SynthInput synth;
  synth.pe_rows = design.shape().rows;
  synth.pe_cols = design.shape().cols;
  synth.simd_vec = design.shape().vec;
  synth.bram_blocks = usage.bram_blocks;
  synth.dtype = dtype;
  usage.report = estimate_resources(synth, device);
  return usage;
}

std::int64_t bram_usage_blocks(const LoopNest& nest, const DesignPoint& design,
                               const FpgaDevice& device, DataType dtype) {
  const TilingSpec& tiling = design.tiling();
  std::int64_t total_blocks = 0;
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    const std::int64_t elems =
        tiling.footprint_elems(nest.accesses()[a].access);
    const double bytes = 2.0 * static_cast<double>(round_up_pow2(elems)) *
                         bytes_per_element(dtype, nest, a);
    total_blocks +=
        static_cast<std::int64_t>(
            std::ceil(bytes / static_cast<double>(device.bram_bytes()))) +
        device.bram_const_per_buffer;
  }
  total_blocks += static_cast<std::int64_t>(std::ceil(
      device.bram_per_pe * static_cast<double>(design.shape().num_pes())));
  return total_blocks;
}

std::int64_t bram_usage_blocks_banked(const LoopNest& nest,
                                      const DesignPoint& design,
                                      const FpgaDevice& device,
                                      DataType dtype) {
  const TilingSpec& tiling = design.tiling();
  const SystolicMapping& mapping = design.mapping();
  std::int64_t total_blocks = 0;
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    const ArrayAccess& access = nest.accesses()[a];
    // Bank count: operands are banked per boundary PE of their feed edge
    // times the SIMD width; the output is banked per column.
    std::int64_t banks;
    if (access.role == AccessRole::kReduce) {
      banks = design.shape().cols;
    } else {
      const bool vertical = access.access.invariant_in(mapping.row_loop);
      banks = (vertical ? design.shape().cols : design.shape().rows) *
              design.shape().vec;
    }
    const std::int64_t elems = tiling.footprint_elems(access.access);
    const std::int64_t per_bank = ceil_div(elems, banks);
    const double bank_bytes = 2.0 *
                              static_cast<double>(round_up_pow2(per_bank)) *
                              bytes_per_element(dtype, nest, a);
    total_blocks +=
        banks * static_cast<std::int64_t>(std::ceil(
                    bank_bytes / static_cast<double>(device.bram_bytes()))) +
        device.bram_const_per_buffer;
  }
  total_blocks += static_cast<std::int64_t>(std::ceil(
      device.bram_per_pe * static_cast<double>(design.shape().num_pes())));
  return total_blocks;
}

std::string ResourceUsage::summary() const {
  std::string out =
      strformat("lanes=%lld dsp=%lld bram=%lld\n", static_cast<long long>(lanes),
                static_cast<long long>(dsp_blocks),
                static_cast<long long>(bram_blocks));
  for (const BufferUsage& buf : buffers) {
    out += strformat("  %s: DA=%lld depth=%lld bram=%lld\n", buf.array.c_str(),
                     static_cast<long long>(buf.footprint_elems),
                     static_cast<long long>(buf.depth_pow2),
                     static_cast<long long>(buf.bram_blocks));
  }
  out += "  " + report.summary() + "\n";
  return out;
}

}  // namespace sasynth
