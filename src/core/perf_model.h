// Performance model: Eqs. 1 and 7-10 of the paper.
//
//   Eff      = effective ops / executed ops                    (Eq. 1)
//   PT       = Eff * prod(t) * 2 * F                           (Eq. 8)
//   MT_t     = Eff*2*prod(s*t) / (sum_r DA_r bytes / BW_total)  (Eq. 10)
//   MT_r     = Eff*2*prod(s*t) / (DA_r bytes / BW_port)         (Eq. 10)
//   MT       = min(MT_t, min_r MT_r)                           (Eq. 9)
//   T        = min(PT, MT)                                     (Eq. 7)
//
// Both PT and MT are rates of *effective* operations (operations of the
// original untiled program), so a layer's runtime is simply
// effective_ops / T. Double buffering lets computation and transfer overlap,
// which is what justifies the min() composition (§3.4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "core/resource_model.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "loopnest/loop_nest.h"
#include "nn/layer.h"

namespace sasynth {

struct PerfEstimate {
  double freq_mhz = 0.0;
  double eff = 0.0;             ///< Eq. 1
  double pt_gops = 0.0;          ///< Eq. 8, computation-bound rate
  double mt_total_gops = 0.0;    ///< Eq. 10, aggregate-bandwidth bound
  std::vector<double> mt_port_gops;  ///< Eq. 10, one per array port
  double mt_gops = 0.0;          ///< Eq. 9
  double throughput_gops = 0.0;  ///< Eq. 7
  bool memory_bound = false;     ///< MT < PT

  /// Block pipeline quantities (also used by the performance simulator).
  std::int64_t num_blocks = 0;
  std::int64_t cycles_per_block = 0;   ///< prod(s), steady-state
  std::int64_t fill_drain_cycles = 0;  ///< array skew: rows + cols - 2

  std::string summary() const;
};

/// Evaluates the performance model for one design on one layer's nest at a
/// given clock. `freq_mhz` is the assumed clock in phase 1 and the realized
/// pseudo-P&R clock in phase 2.
PerfEstimate estimate_performance(const LoopNest& nest,
                                  const DesignPoint& design,
                                  const FpgaDevice& device, DataType dtype,
                                  double freq_mhz);

/// Folded-execution estimate: the performance model applied to a fixed
/// design executing a layer it was not necessarily synthesized for
/// (src/deploy). `design` must pass validate_folded(nest); typically it is
/// the retargeted design a deploy::FoldPlan produced. The PerfEstimate is
/// computed by the exact same arithmetic as estimate_performance — when the
/// fold plan degenerates to identity (a layer on its own bespoke design) the
/// numbers reproduce the bespoke estimate bit for bit — plus explicit
/// DIVCEIL padding accounting: executed vs effective iterations and the
/// wasted-lane/pad-cycle fraction.
struct FoldedPerfEstimate {
  PerfEstimate perf;
  std::int64_t effective_iterations = 0;  ///< the layer's true iterations
  std::int64_t executed_iterations = 0;   ///< padded to the array quantum
  std::int64_t padded_iterations = 0;     ///< executed - effective
  double waste_ratio = 0.0;               ///< padded / executed = 1 - eff

  std::string summary() const;
};

FoldedPerfEstimate estimate_folded_performance(const LoopNest& nest,
                                               const DesignPoint& design,
                                               const FpgaDevice& device,
                                               DataType dtype, double freq_mhz);

/// Runtime of one full layer (all groups, sequentially) in milliseconds.
double layer_latency_ms(const ConvLayerDesc& layer, const PerfEstimate& perf);

/// Modeled total compute cycles for one group of the layer: blocks * prod(s)
/// plus one array fill/drain. The cycle-accurate simulator is validated
/// against this.
std::int64_t modeled_compute_cycles(const LoopNest& nest,
                                    const DesignPoint& design);

/// DSP efficiency alone (Eq. 1) — convenience wrapper over the tiling.
double dsp_efficiency(const LoopNest& nest, const DesignPoint& design);

/// Executed (padded) iterations for the inner bounds `t` alone (Eq. 1
/// denominator): prod_l ceil(N_l / t_l) * t_l. This matches
/// TilingSpec::executed_iterations for any middle bounds s, because the
/// middle loops clip and only the array-shape quantization pads. The
/// product saturates to INT64_MAX instead of overflowing (a saturated
/// denominator makes the bound *larger*, so it stays admissible).
std::int64_t executed_iterations_for_inner(const LoopNest& nest,
                                           const std::vector<std::int64_t>& inner);

/// Admissible upper bound on the phase-1 throughput of *every* reuse
/// strategy of one (mapping, shape) work item: the compute-bound PT of
/// Eq. 8, which is independent of the middle bounds s (Eff depends only on
/// t). Since T = min(PT, MT) <= PT, no candidate of the item can estimate
/// above this value. The arithmetic replicates estimate_performance's
/// pt_gops expression operation for operation, so the bound is not merely
/// >= the estimate — it is bit-identical to the PT every candidate of the
/// item reports, which is what makes the branch-and-bound prune in
/// enumerate_phase1 exact under floating-point comparison (docs/MODEL.md,
/// "Dominance pruning").
double phase1_pt_bound_gops(const LoopNest& nest,
                            const std::vector<std::int64_t>& inner,
                            std::int64_t lanes, double freq_mhz);

}  // namespace sasynth
