// A complete systolic design point: the answer the DSE produces.
//
// A DesignPoint fixes the three architecture decisions of §2.3:
//  1. the feasible mapping (which loop drives PE rows / cols / SIMD lanes),
//  2. the PE array shape  (inner-loop bounds t of the Fig. 4 representation),
//  3. the data-reuse strategy (middle-loop bounds s, i.e. tile sizes).
#pragma once

#include <cstdint>
#include <string>

#include "core/mapping.h"
#include "loopnest/loop_nest.h"
#include "loopnest/tiling.h"

namespace sasynth {

/// The PE array's three parallel extents.
struct ArrayShape {
  std::int64_t rows = 1;
  std::int64_t cols = 1;
  std::int64_t vec = 1;

  std::int64_t num_pes() const { return rows * cols; }
  std::int64_t num_lanes() const { return rows * cols * vec; }

  /// "(11,14,8)" as printed in the paper's tables.
  std::string to_string() const;

  bool operator==(const ArrayShape& other) const;
};

class DesignPoint {
 public:
  DesignPoint() = default;

  /// Builds a design for `nest` from a mapping, a shape, and middle bounds.
  /// The tiling's inner bounds are derived from (mapping, shape); every
  /// unmapped loop gets t = 1. `middle` must have one entry per nest loop.
  DesignPoint(const LoopNest& nest, SystolicMapping mapping, ArrayShape shape,
              std::vector<std::int64_t> middle);

  const SystolicMapping& mapping() const { return mapping_; }
  const ArrayShape& shape() const { return shape_; }
  const TilingSpec& tiling() const { return tiling_; }

  /// Replaces middle bounds (reuse strategy) keeping mapping/shape.
  void set_middle_bounds(std::vector<std::int64_t> middle);

  /// Total MAC lanes = rows * cols * vec = prod(t).
  std::int64_t num_lanes() const { return shape_.num_lanes(); }

  /// Stable textual identity for hashing (pseudo-P&R jitter) and logs.
  std::string signature() const;

  /// "(row=o,col=c,vec=i) shape=(11,13,8) s=(...)".
  std::string to_string(const LoopNest& nest) const;

  /// Validates against the nest. Empty string when valid.
  std::string validate(const LoopNest& nest) const;

  /// Folded-execution validation: mapping in range, shape/bounds >= 1, but
  /// no block-trip economy cap — the check a design must pass to *execute*
  /// on a nest it was not synthesized for (src/deploy). Every design that
  /// passes validate() passes validate_folded().
  std::string validate_folded(const LoopNest& nest) const;

  bool operator==(const DesignPoint& other) const;

 private:
  SystolicMapping mapping_;
  ArrayShape shape_;
  TilingSpec tiling_;
};

}  // namespace sasynth
