// Loop-to-architecture mapping and its feasibility condition (paper §3.2).
//
// A systolic mapping selects three loops of the nest and assigns them to the
// three parallel hardware dimensions:
//   row : the vertical PE dimension  — input pixels (IN) shift down it
//   col : the horizontal PE dimension — weights (W) shift right along it
//   vec : the SIMD lanes inside a PE  — partial sums accumulate across them
//
// Feasibility (Eq. 2 + architecture): each of the three arrays must have
// fine-grained reuse carried by one of the chosen loops; specifically the
// loop mapped to a shift direction must carry the reuse of the array shifted
// across that direction (so neighbouring PEs can share the value by local
// shifting), and the vec loop must carry the reuse of the reduction array
// (so lanes can combine through the DSP accumulation chain).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loopnest/loop_nest.h"
#include "loopnest/reuse.h"

namespace sasynth {

struct SystolicMapping {
  std::size_t row_loop = 0;
  std::size_t col_loop = 0;
  std::size_t vec_loop = 0;

  bool uses_loop(std::size_t loop) const {
    return loop == row_loop || loop == col_loop || loop == vec_loop;
  }

  /// "(row=o, col=c, vec=i)" given the nest's iterator names.
  std::string to_string(const LoopNest& nest) const;

  /// Stable signature used for hashing/deduplication.
  std::string signature() const;

  bool operator==(const SystolicMapping& other) const;
};

/// The paper's published condition (Eq. 2 / Problem 1): three distinct loops
/// such that every array has fine-grained reuse on at least one of them.
/// Direction-agnostic — it accepts permutations the architecture cannot use.
bool satisfies_reuse_condition(const LoopNest& nest, const ReuseMatrix& reuse,
                               const SystolicMapping& mapping);

/// The architectural condition actually required by the array of Figs. 1-2
/// (see header comment). Implies satisfies_reuse_condition.
/// If `why` is non-null it receives a diagnostic on failure.
bool is_feasible_mapping(const LoopNest& nest, const ReuseMatrix& reuse,
                         const SystolicMapping& mapping,
                         std::string* why = nullptr);

/// All ordered loop triples satisfying the weak reuse condition (Eq. 2).
std::vector<SystolicMapping> enumerate_reuse_condition_mappings(
    const LoopNest& nest, const ReuseMatrix& reuse);

/// All ordered triples feasible for the architecture. For the convolution
/// nest of Code 1 this yields 12 mappings (vec in {i,p,q}; {row,col} an
/// ordered pair of the o-loop and one of {c,r}).
std::vector<SystolicMapping> enumerate_feasible_mappings(
    const LoopNest& nest, const ReuseMatrix& reuse);

/// Number of ordered loop triples examined by the enumerators
/// (n * (n-1) * (n-2)); exposed for the DSE statistics.
std::int64_t num_candidate_mappings(const LoopNest& nest);

}  // namespace sasynth
