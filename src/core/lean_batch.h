// Struct-of-arrays batch view of phase-1 work items.
//
// The exhaustive sweep evaluated Eq. 1/8 one (mapping, shape) item at a
// time through pointer-chasing scalar code. The branch-and-bound pass needs
// the compute-bound PT of *every* item up front, so the items are laid out
// as contiguous arrays (rows/cols/vec/lanes, plus the Eq. 1 executed-
// iteration denominator precomputed in exact int64 arithmetic) and the
// remaining double arithmetic runs as one flat loop the compiler can
// auto-vectorize. The kernel lives in its own translation unit
// (lean_batch.cpp) so scripts/check_vectorization.sh can assert the loop
// actually vectorizes at the CI optimization level.
//
// Determinism: the kernel is pure double divide/multiply, element-wise —
// IEEE-754 semantics are identical lane-by-lane to the scalar expression in
// estimate_performance (no reassociation, no FMA contraction: the
// expression contains no addition), so the vectorized bounds are
// bit-identical to the scalar model. tests/core/dse_prune_equivalence_test
// pins this.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sasynth {

/// One phase-1 work item per index. rows/cols/vec are kept for callers
/// that build shapes back out of a scored batch (unified.cpp's shortlist);
/// lanes and executed feed the kernel as doubles so the hot loop needs no
/// int64->double conversion (SSE2 has no packed conversion for that).
struct ShapeBatch {
  std::vector<std::int64_t> rows;
  std::vector<std::int64_t> cols;
  std::vector<std::int64_t> vec;
  std::vector<double> lanes;     ///< rows * cols * vec
  std::vector<double> executed;  ///< Eq. 1 denominator (exact int64 -> double)
  std::vector<double> pt_gops;   ///< output: Eq. 8 compute-bound rate

  std::size_t size() const { return executed.size(); }

  void resize(std::size_t n) {
    rows.resize(n);
    cols.resize(n);
    vec.resize(n);
    lanes.resize(n);
    executed.resize(n);
    pt_gops.resize(n);
  }
};

/// pt[i] = ((total_iters / executed[i]) * lanes[i]) * 2.0 * freq_ghz — the
/// exact operation sequence of estimate_performance's Eq. 1 + Eq. 8.
/// Preconditions: executed[i] > 0; the arrays do not alias.
void batch_pt_bounds(const double* executed, const double* lanes,
                     double total_iters, double freq_ghz, double* pt_gops,
                     std::size_t n);

/// Convenience over a filled ShapeBatch (writes batch.pt_gops).
void batch_pt_bounds(ShapeBatch& batch, double total_iters, double freq_ghz);

}  // namespace sasynth
