#include "core/dse.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>

#include "core/mapping.h"
#include "fpga/freq_model.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math_util.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sasynth {

namespace {

/// Registry handles resolved once per process (registration locks; the
/// increments behind these references are lock-free and gated on
/// obs::metrics_enabled()). Names are the docs/OBSERVABILITY.md contract.
struct DseMetrics {
  obs::Counter& phase1_runs;
  obs::Counter& explorations;
  obs::Counter& work_items;
  obs::Counter& candidates;
  obs::Counter& mappings_pruned_feasibility;  ///< Eq. 2/3/11
  obs::Counter& shapes_pruned_util;           ///< Eq. 12 floor
  obs::Counter& reuse_pruned_pow2;            ///< pow2 middle-bound rule
  obs::Counter& reuse_evaluated;
  obs::Counter& reuse_rejected_bram;
  obs::Counter& rejected_soft_logic;
  obs::Counter& util_relaxations;
  obs::Counter& cancelled;
  obs::Histogram& phase1_ms;
  obs::Histogram& phase2_ms;

  static DseMetrics& get() {
    static DseMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new DseMetrics{
          r.counter("dse_phase1_runs_total"),
          r.counter("dse_explorations_total"),
          r.counter("dse_work_items_total"),
          r.counter("dse_candidates_total"),
          r.counter("dse_mappings_pruned_feasibility_total"),
          r.counter("dse_shapes_pruned_util_total"),
          r.counter("dse_reuse_pruned_pow2_total"),
          r.counter("dse_reuse_evaluated_total"),
          r.counter("dse_reuse_rejected_bram_total"),
          r.counter("dse_candidates_rejected_soft_logic_total"),
          r.counter("dse_util_relaxations_total"),
          r.counter("dse_cancelled_total"),
          r.histogram("dse_phase1_ms"),
          r.histogram("dse_phase2_ms"),
      };
    }();
    return *m;
  }
};

/// Publishes one enumerate_phase1 run (the delta between the caller's stats
/// before and after) into the global registry.
void publish_phase1_run(const DseStats& before, const DseStats& after,
                        std::size_t candidate_count, double wall_seconds) {
  if (!obs::metrics_enabled()) return;
  DseMetrics& m = DseMetrics::get();
  m.phase1_runs.add(1);
  m.work_items.add(after.work_items - before.work_items);
  m.candidates.add(static_cast<std::int64_t>(candidate_count));
  m.mappings_pruned_feasibility.add(
      (after.mappings_candidates - before.mappings_candidates) -
      (after.mappings_feasible - before.mappings_feasible));
  m.shapes_pruned_util.add((after.shapes_considered - before.shapes_considered) -
                           (after.shapes_after_prune - before.shapes_after_prune));
  m.reuse_pruned_pow2.add(
      (after.reuse_space_bruteforce - before.reuse_space_bruteforce) -
      (after.reuse_space_pow2 - before.reuse_space_pow2));
  m.reuse_evaluated.add(after.reuse_evaluated - before.reuse_evaluated);
  m.reuse_rejected_bram.add(after.reuse_bram_rejected -
                            before.reuse_bram_rejected);
  m.rejected_soft_logic.add(after.soft_logic_rejected -
                            before.soft_logic_rejected);
  m.phase1_ms.observe(wall_seconds * 1e3);
}

/// Flattened, allocation-free evaluator for the DSE inner loop. All model
/// semantics are identical to resource_model/perf_model; tests assert the
/// equivalence.
class LeanModel {
 public:
  LeanModel(const LoopNest& nest, const FpgaDevice& device, DataType dtype,
            double freq_mhz)
      : device_(device), freq_ghz_(freq_mhz * 1e-3) {
    num_loops_ = nest.num_loops();
    trips_ = nest.trip_counts();
    total_iters_ = nest.total_iterations();
    for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
      AccessInfo info;
      const AccessFunction& f = nest.accesses()[a].access;
      for (const AffineExpr& dim : f.indices) {
        std::vector<std::int64_t> coeffs(num_loops_);
        for (std::size_t l = 0; l < num_loops_; ++l) coeffs[l] = dim.coeff(l);
        info.dims.push_back(std::move(coeffs));
      }
      info.bytes_per_elem = bytes_per_element(dtype, nest, a);
      accesses_.push_back(std::move(info));
    }
  }

  struct Eval {
    double eff = 0.0;
    std::int64_t bram_blocks = 0;
    double pt_gops = 0.0;
    double mt_gops = 0.0;
    double throughput_gops = 0.0;
    double dram_traffic_bytes = 0.0;  ///< total off-chip bytes, all blocks
  };

  /// DSP efficiency for inner bounds t (Eq. 1; middle loops clip, so only
  /// the array-shape quantization wastes computation). Constant across the
  /// reuse search for a fixed shape.
  double efficiency(const std::vector<std::int64_t>& inner) const {
    double executed = 1.0;
    for (std::size_t l = 0; l < num_loops_; ++l) {
      executed *= static_cast<double>(ceil_div(trips_[l], inner[l]) * inner[l]);
    }
    return static_cast<double>(total_iters_) / executed;
  }

  /// Evaluates the full model at block trips b_l = s_l * t_l with the
  /// precomputed efficiency. `lanes` is prod(t), `num_pes` is rows*cols.
  Eval evaluate(const std::vector<std::int64_t>& block, double eff,
                std::int64_t lanes, std::int64_t num_pes) const {
    Eval out;
    out.eff = eff;
    double macs_per_block = 1.0;
    double num_blocks = 1.0;
    for (std::size_t l = 0; l < num_loops_; ++l) {
      macs_per_block *= static_cast<double>(block[l]);
      num_blocks *= static_cast<double>(ceil_div(trips_[l], block[l]));
    }

    // Eq. 5/6.
    double total_bytes = 0.0;
    double min_port_gops = 1e300;
    const double eff_ops_per_block = out.eff * 2.0 * macs_per_block;
    std::int64_t bram = 0;
    for (const AccessInfo& info : accesses_) {
      std::int64_t footprint = 1;
      for (const auto& coeffs : info.dims) {
        std::int64_t range = 1;
        for (std::size_t l = 0; l < num_loops_; ++l) {
          range += coeffs[l] * (block[l] - 1);
        }
        if (!checked_mul(footprint, range, &footprint)) {
          // A buffer footprint that overflows int64 cannot fit any device;
          // reject the shape instead of feeding wrapped (possibly negative)
          // sizes into the BRAM model below.
          out.bram_blocks = std::numeric_limits<std::int64_t>::max();
          return out;
        }
      }
      const double bytes =
          2.0 * static_cast<double>(round_up_pow2(footprint)) *
          info.bytes_per_elem;
      bram += static_cast<std::int64_t>(
                  std::ceil(bytes / static_cast<double>(device_.bram_bytes()))) +
              device_.bram_const_per_buffer;
      const double stream_bytes =
          static_cast<double>(footprint) * info.bytes_per_elem;
      total_bytes += stream_bytes;
      min_port_gops = std::min(
          min_port_gops,
          eff_ops_per_block * device_.bw_port_gbs / stream_bytes);
    }
    bram += static_cast<std::int64_t>(
        std::ceil(device_.bram_per_pe * static_cast<double>(num_pes)));
    out.bram_blocks = bram;

    // Eqs. 7-10.
    out.pt_gops = out.eff * static_cast<double>(lanes) * 2.0 * freq_ghz_;
    out.mt_gops = std::min(eff_ops_per_block * device_.bw_total_gbs / total_bytes,
                           min_port_gops);
    out.throughput_gops = std::min(out.pt_gops, out.mt_gops);
    out.dram_traffic_bytes = num_blocks * total_bytes;
    return out;
  }

  const std::vector<std::int64_t>& trips() const { return trips_; }

 private:
  struct AccessInfo {
    std::vector<std::vector<std::int64_t>> dims;  ///< coeff per (dim, loop)
    double bytes_per_elem = 0.0;
  };

  const FpgaDevice& device_;
  double freq_ghz_;
  std::size_t num_loops_ = 0;
  std::vector<std::int64_t> trips_;
  std::int64_t total_iters_ = 0;
  std::vector<AccessInfo> accesses_;
};

/// Memoized candidate middle bounds keyed by cap = ceil(trip / t). The
/// phase-1 sweep hits the same few caps for every (mapping, shape) work
/// item, so deriving the vectors once per cap removes the repeated
/// pow2_candidates_covering / iota work from the inner loop. Entries are
/// node-based (unordered_map), so returned references stay valid across
/// inserts. One cache per worker thread — no locking.
class MiddleCandidateCache {
 public:
  /// Powers of two covering `cap` (also the pow2 search-space size).
  const std::vector<std::int64_t>& pow2_covering(std::int64_t cap) {
    auto it = pow2_.find(cap);
    if (it == pow2_.end()) {
      it = pow2_.emplace(cap, pow2_candidates_covering(cap)).first;
    }
    return it->second;
  }

  /// Candidate middle bounds for one loop: powers of two covering `cap`
  /// (or all integers 1..cap when pow2 pruning is disabled).
  const std::vector<std::int64_t>& middles(std::int64_t cap, bool pow2_only) {
    if (pow2_only) return pow2_covering(cap);
    auto it = all_.find(cap);
    if (it == all_.end()) {
      std::vector<std::int64_t> all(static_cast<std::size_t>(cap));
      for (std::int64_t v = 1; v <= cap; ++v) {
        all[static_cast<std::size_t>(v - 1)] = v;
      }
      it = all_.emplace(cap, std::move(all)).first;
    }
    return it->second;
  }

 private:
  std::unordered_map<std::int64_t, std::vector<std::int64_t>> pow2_;
  std::unordered_map<std::int64_t, std::vector<std::int64_t>> all_;
};

/// One (mapping, shape) unit of the phase-1 sweep.
struct Phase1Item {
  const SystolicMapping* mapping = nullptr;
  ArrayShape shape;
};

/// Optimal middle bounds for a fixed (mapping, shape) — the inner loop of
/// phase 1. The LeanModel and candidate cache are hoisted by the caller so
/// the sweep constructs neither per work item.
bool best_reuse_impl(const LoopNest& nest, const LeanModel& model,
                     const FpgaDevice& device, const DseOptions& options,
                     const SystolicMapping& mapping, const ArrayShape& shape,
                     MiddleCandidateCache& cache, DesignPoint* out,
                     DseStats* stats) {
  const std::size_t n = nest.num_loops();
  std::vector<std::int64_t> inner(n, 1);
  inner[mapping.row_loop] = shape.rows;
  inner[mapping.col_loop] = shape.cols;
  inner[mapping.vec_loop] = shape.vec;

  std::vector<const std::vector<std::int64_t>*> candidates(n);
  std::int64_t pow2_space = 1;
  std::int64_t brute_space = 1;
  for (std::size_t l = 0; l < n; ++l) {
    const std::int64_t cap = ceil_div(nest.loop(l).trip, inner[l]);
    candidates[l] = &cache.middles(cap, options.pow2_middle);
    // Search-space sizes are reporting-only; saturate rather than wrap on
    // pathologically deep nests.
    pow2_space = sat_mul(
        pow2_space, static_cast<std::int64_t>(cache.pow2_covering(cap).size()));
    brute_space = sat_mul(brute_space, cap);
  }
  if (stats != nullptr) {
    stats->reuse_space_pow2 += pow2_space;
    stats->reuse_space_bruteforce += brute_space;
  }

  const std::int64_t lanes = shape.num_lanes();
  const std::int64_t num_pes = shape.num_pes();
  const std::int64_t bram_budget = static_cast<std::int64_t>(
      options.max_bram_util * static_cast<double>(device.bram_blocks));

  std::vector<std::int64_t> block(n, 0);
  std::vector<std::int64_t> best_s;
  const double eff = model.efficiency(inner);
  double best_gops = -1.0;
  double best_traffic = 0.0;
  std::int64_t best_bram = 0;
  std::int64_t evaluated = 0;
  std::int64_t bram_rejected = 0;

  // DFS over middle bounds. BRAM is monotone non-decreasing in every s_l, so
  // once a prefix with all-minimal suffix exceeds the budget, every larger
  // choice at the current level can be skipped.
  std::vector<std::int64_t> current(n, 1);
  auto dfs = [&](auto&& self, std::size_t depth) -> void {
    if (depth == n) {
      for (std::size_t l = 0; l < n; ++l) block[l] = current[l] * inner[l];
      const LeanModel::Eval eval = model.evaluate(block, eff, lanes, num_pes);
      ++evaluated;
      if (eval.bram_blocks > bram_budget) {
        ++bram_rejected;
        return;
      }
      // Maximize throughput; among ties, prefer the reuse strategy with the
      // least total off-chip traffic ("balance data reuse and memory
      // bandwidth", §2.3), then the smaller buffers.
      const bool better =
          best_s.empty() || eval.throughput_gops > best_gops + 1e-12 ||
          (eval.throughput_gops > best_gops - 1e-12 &&
           (eval.dram_traffic_bytes < best_traffic * (1.0 - 1e-12) ||
            (eval.dram_traffic_bytes <= best_traffic * (1.0 + 1e-12) &&
             eval.bram_blocks < best_bram)));
      if (better) {
        best_gops = eval.throughput_gops;
        best_traffic = eval.dram_traffic_bytes;
        best_bram = eval.bram_blocks;
        best_s = current;
      }
      return;
    }
    for (const std::int64_t s : *candidates[depth]) {
      current[depth] = s;
      // Prune: lower-bound BRAM with minimal suffix.
      for (std::size_t l = 0; l < n; ++l) {
        block[l] = (l <= depth ? current[l] : 1) * inner[l];
      }
      const LeanModel::Eval lb = model.evaluate(block, eff, lanes, num_pes);
      if (lb.bram_blocks > bram_budget) break;  // candidates are ascending
      self(self, depth + 1);
    }
    current[depth] = 1;
  };
  dfs(dfs, 0);

  if (stats != nullptr) {
    stats->reuse_evaluated += evaluated;
    stats->reuse_bram_rejected += bram_rejected;
  }
  if (best_s.empty()) return false;
  *out = DesignPoint(nest, mapping, shape, std::move(best_s));
  return true;
}

}  // namespace

std::string DseStats::summary() const {
  std::string out = strformat(
      "mappings %lld/%lld feasible; shapes %lld -> %lld after Eq.12 prune; "
      "reuse evaluated %lld (pow2 space %lld, brute-force space %lld); "
      "%lld work items on %d jobs; phase1 %.2fs (cpu %.2fs) phase2 %.2fs",
      static_cast<long long>(mappings_feasible),
      static_cast<long long>(mappings_candidates),
      static_cast<long long>(shapes_considered),
      static_cast<long long>(shapes_after_prune),
      static_cast<long long>(reuse_evaluated),
      static_cast<long long>(reuse_space_pow2),
      static_cast<long long>(reuse_space_bruteforce),
      static_cast<long long>(work_items), jobs_used, phase1_seconds,
      phase1_cpu_seconds, phase2_seconds);
  if (util_relaxations > 0) {
    out += strformat("; c_s relaxed %lldx to %.3f",
                     static_cast<long long>(util_relaxations),
                     effective_min_dsp_util);
  }
  if (cancelled) out += "; cancelled (partial sweep)";
  return out;
}

const DseCandidate* DseResult::best() const {
  const DseCandidate* best = nullptr;
  for (const DseCandidate& c : top) {
    if (best == nullptr || c.realized_gops() > best->realized_gops()) {
      best = &c;
    }
  }
  return best;
}

DesignSpaceExplorer::DesignSpaceExplorer(FpgaDevice device, DataType dtype,
                                         DseOptions options)
    : device_(std::move(device)), dtype_(dtype), options_(options) {}

std::vector<ArrayShape> enumerate_shapes(const LoopNest& nest,
                                         const SystolicMapping& mapping,
                                         const FpgaDevice& device,
                                         DataType dtype,
                                         const DseOptions& options,
                                         std::int64_t* considered) {
  const std::int64_t capacity = device_mac_capacity(device, dtype);
  const std::int64_t min_lanes = static_cast<std::int64_t>(
      std::ceil(options.min_dsp_util * static_cast<double>(capacity)));

  // An inner extent beyond the next power of two above the trip count only
  // adds pure waste, so cap each dimension there (and at the global caps).
  auto dim_cap = [&](std::size_t loop, std::int64_t global_cap) {
    return std::min(global_cap, round_up_pow2(nest.loop(loop).trip));
  };
  const std::int64_t row_cap = dim_cap(mapping.row_loop, options.max_rows);
  const std::int64_t col_cap = dim_cap(mapping.col_loop, options.max_cols);
  const std::int64_t vec_cap = dim_cap(mapping.vec_loop, options.max_vec);

  std::vector<std::int64_t> vec_values;
  if (options.pow2_vec_only) {
    vec_values = pow2_candidates(vec_cap);
  } else {
    for (std::int64_t v = 1; v <= vec_cap; ++v) vec_values.push_back(v);
  }

  std::vector<ArrayShape> shapes;
  std::int64_t considered_count = 0;
  for (std::int64_t rows = 1; rows <= row_cap; ++rows) {
    for (std::int64_t cols = 1; cols <= col_cap; ++cols) {
      for (const std::int64_t vec : vec_values) {
        std::int64_t lanes;
        if (!checked_mul(rows, cols, &lanes) ||
            !checked_mul(lanes, vec, &lanes)) {
          continue;  // overflowed lane count certainly exceeds any capacity
        }
        if (lanes > capacity) continue;
        ++considered_count;
        if (lanes < min_lanes) continue;  // Eq. 12
        shapes.push_back(ArrayShape{rows, cols, vec});
      }
    }
  }
  if (considered != nullptr) *considered += considered_count;
  return shapes;
}

bool DesignSpaceExplorer::best_reuse_strategy(const LoopNest& nest,
                                              const SystolicMapping& mapping,
                                              const ArrayShape& shape,
                                              DesignPoint* out,
                                              DseStats* stats) const {
  const LeanModel model(nest, device_, dtype_, options_.assumed_freq_mhz);
  MiddleCandidateCache cache;
  return best_reuse_impl(nest, model, device_, options_, mapping, shape, cache,
                         out, stats);
}

std::vector<DseCandidate> DesignSpaceExplorer::enumerate_phase1(
    const LoopNest& nest, DseStats* stats) const {
  obs::ScopedSpan phase1_span("dse.phase1", "dse");
  DseStats local;
  DseStats* st = stats != nullptr ? stats : &local;
  const DseStats before = *st;

  // Flatten the sweep into (mapping, shape) work items so it can be
  // partitioned across workers. Each worker evaluates its ranges into
  // per-item slots and a per-worker stats block; the merge below reads slots
  // in item order, so the candidate list entering the sort is byte-identical
  // to the sequential sweep at any thread count (and integer stat counters
  // sum commutatively).
  std::vector<SystolicMapping> mappings;
  std::vector<Phase1Item> items;
  {
    obs::ScopedSpan enumerate_span("dse.phase1.enumerate", "dse");
    const ReuseMatrix reuse = analyze_reuse(nest);
    st->mappings_candidates += num_candidate_mappings(nest);
    mappings = enumerate_feasible_mappings(nest, reuse);
    st->mappings_feasible += static_cast<std::int64_t>(mappings.size());
    for (const SystolicMapping& mapping : mappings) {
      const std::vector<ArrayShape> shapes = enumerate_shapes(
          nest, mapping, device_, dtype_, options_, &st->shapes_considered);
      st->shapes_after_prune += static_cast<std::int64_t>(shapes.size());
      for (const ArrayShape& shape : shapes) {
        items.push_back(Phase1Item{&mapping, shape});
      }
    }
    enumerate_span.arg("mappings", static_cast<std::int64_t>(mappings.size()));
    enumerate_span.arg("work_items", static_cast<std::int64_t>(items.size()));
  }
  st->work_items += static_cast<std::int64_t>(items.size());

  const LeanModel model(nest, device_, dtype_, options_.assumed_freq_mhz);
  ThreadPool pool(options_.jobs);
  st->jobs_used = pool.jobs();
  const std::size_t workers = static_cast<std::size_t>(pool.jobs());
  std::vector<std::optional<DseCandidate>> slots(items.size());
  std::vector<DseStats> worker_stats(workers);
  std::vector<MiddleCandidateCache> caches(workers);
  std::vector<double> busy(workers, 0.0);

  pool.for_each(
      static_cast<std::int64_t>(items.size()),
      [&](std::int64_t begin, std::int64_t end, int worker) {
        // One shard span per dequeued range (~8 per worker) — granular
        // enough to see load balance in the trace, far off the per-item
        // hot path. Its clock is also the per-worker busy timer.
        obs::ScopedSpan shard("dse.phase1.shard", "dse");
        shard.arg("begin", begin);
        shard.arg("end", end);
        shard.arg("worker", worker);
        DseStats& ws = worker_stats[static_cast<std::size_t>(worker)];
        MiddleCandidateCache& cache = caches[static_cast<std::size_t>(worker)];
        for (std::int64_t i = begin; i < end; ++i) {
          // Cooperative cancellation poll, per work item: one relaxed load
          // (plus a clock read only when a deadline is armed) against an
          // item that costs orders of magnitude more. cut(i) folds in the
          // deterministic item cut, an expired deadline, and an explicit
          // request_cancel(); the rest of this shard — and, via the same
          // check at its own first item, every later shard — is skipped,
          // leaving the already-filled slots as the best-so-far partial.
          if (options_.cancel.cut(i)) {
            ws.cancelled = true;
            break;
          }
          const Phase1Item& item = items[static_cast<std::size_t>(i)];
          DesignPoint design;
          if (!best_reuse_impl(nest, model, device_, options_, *item.mapping,
                               item.shape, cache, &design, &ws)) {
            continue;
          }
          DseCandidate candidate;
          candidate.design = design;
          candidate.estimate = estimate_performance(
              nest, design, device_, dtype_, options_.assumed_freq_mhz);
          candidate.resources = model_resources(nest, design, device_, dtype_);
          if (options_.enforce_soft_logic &&
              !candidate.resources.report.fits()) {
            ++ws.soft_logic_rejected;
            continue;
          }
          slots[static_cast<std::size_t>(i)] = std::move(candidate);
        }
        busy[static_cast<std::size_t>(worker)] += shard.elapsed_seconds();
      });

  for (const DseStats& ws : worker_stats) {
    st->reuse_evaluated += ws.reuse_evaluated;
    st->reuse_bram_rejected += ws.reuse_bram_rejected;
    st->soft_logic_rejected += ws.soft_logic_rejected;
    st->reuse_space_pow2 += ws.reuse_space_pow2;
    st->reuse_space_bruteforce += ws.reuse_space_bruteforce;
    st->cancelled = st->cancelled || ws.cancelled;
  }
  for (const double b : busy) st->phase1_cpu_seconds += b;

  std::vector<DseCandidate> candidates;
  candidates.reserve(items.size());
  for (std::optional<DseCandidate>& slot : slots) {
    if (slot.has_value()) candidates.push_back(std::move(*slot));
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const DseCandidate& a, const DseCandidate& b) {
              if (a.estimated_gops() != b.estimated_gops()) {
                return a.estimated_gops() > b.estimated_gops();
              }
              return a.resources.bram_blocks < b.resources.bram_blocks;
            });
  const double wall = phase1_span.elapsed_seconds();
  st->phase1_seconds += wall;
  phase1_span.arg("work_items", st->work_items - before.work_items);
  phase1_span.arg("candidates", static_cast<std::int64_t>(candidates.size()));
  publish_phase1_run(before, *st, candidates.size(), wall);
  return candidates;
}

void DesignSpaceExplorer::run_phase2(const LoopNest& nest,
                                     std::vector<DseCandidate>& candidates)
    const {
  // Each candidate's pseudo-P&R is independent and written in place, so the
  // parallel sweep is trivially order-insensitive.
  ThreadPool pool(options_.jobs);
  pool.for_each(static_cast<std::int64_t>(candidates.size()),
                [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
                  for (std::int64_t i = begin; i < end; ++i) {
                    // Deadline poll only (the deterministic item cut indexes
                    // phase-1 work items, not this top-K list): candidates
                    // the cut skips keep realized_freq_mhz == 0 and best()
                    // falls back to the estimated ranking.
                    if (options_.cancel.cancelled()) return;
                    DseCandidate& candidate =
                        candidates[static_cast<std::size_t>(i)];
                    candidate.realized_freq_mhz = pseudo_pnr_frequency_mhz(
                        device_, candidate.resources.report,
                        candidate.design.signature());
                    candidate.realized = estimate_performance(
                        nest, candidate.design, device_, dtype_,
                        candidate.realized_freq_mhz);
                  }
                });
}

DseResult DesignSpaceExplorer::explore(const LoopNest& nest) const {
  DseResult result;
  result.stats.effective_min_dsp_util = options_.min_dsp_util;
  std::vector<DseCandidate> all = enumerate_phase1(nest, &result.stats);
  if (all.empty() && !result.stats.cancelled && options_.auto_relax_util &&
      options_.min_dsp_util > 0.0) {
    // The utilization floor excluded every feasible shape (tiny layer or
    // tight device); relax c_s and retry — the paper's phase 1 rerun knob.
    // A cancelled empty sweep must not enter this loop: "found nothing
    // before the deadline" is a timeout, not evidence that c_s is too
    // aggressive, and each retry re-sweeps the whole space.
    DseOptions relaxed = options_;
    while (all.empty() && !result.stats.cancelled &&
           relaxed.min_dsp_util > 1e-3) {
      relaxed.min_dsp_util /= 2.0;
      ++result.stats.util_relaxations;
      const DesignSpaceExplorer retry(device_, dtype_, relaxed);
      all = retry.enumerate_phase1(nest, &result.stats);
    }
    if (all.empty() && !result.stats.cancelled) {
      relaxed.min_dsp_util = 0.0;
      ++result.stats.util_relaxations;
      const DesignSpaceExplorer retry(device_, dtype_, relaxed);
      all = retry.enumerate_phase1(nest, &result.stats);
    }
    result.stats.effective_min_dsp_util = relaxed.min_dsp_util;
  }
  const std::size_t keep =
      std::min<std::size_t>(all.size(), static_cast<std::size_t>(options_.top_k));
  result.top.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(keep));

  double phase2_wall = 0.0;
  {
    obs::ScopedSpan phase2_span("dse.phase2", "dse");
    phase2_span.arg("candidates", static_cast<std::int64_t>(result.top.size()));
    run_phase2(nest, result.top);
    phase2_wall = phase2_span.elapsed_seconds();
  }
  result.stats.phase2_seconds += phase2_wall;
  // Phase 2 has no per-worker timers; its busy time is ~the wall time of the
  // sweep itself (the top-K list is short).
  result.stats.phase2_cpu_seconds += phase2_wall;

  // A deadline that expired during phase 2 is still a cancellation (some
  // realized numbers are missing); the deterministic item cut, by contrast,
  // only marks phase 1.
  if (options_.cancel.cancelled()) result.stats.cancelled = true;
  result.status =
      result.stats.cancelled ? DseStatus::kCancelled : DseStatus::kOk;

  if (obs::metrics_enabled()) {
    DseMetrics& m = DseMetrics::get();
    m.explorations.add(1);
    m.util_relaxations.add(result.stats.util_relaxations);
    m.phase2_ms.observe(phase2_wall * 1e3);
    if (result.status == DseStatus::kCancelled) m.cancelled.add(1);
  }
  return result;
}

DseResult DesignSpaceExplorer::explore_layer(const ConvLayerDesc& layer) const {
  return explore(build_conv_nest(layer));
}

}  // namespace sasynth
