#include "core/dse.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "core/lean_batch.h"
#include "core/mapping.h"
#include "fpga/freq_model.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math_util.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sasynth {

namespace {

/// Registry handles resolved once per process (registration locks; the
/// increments behind these references are lock-free and gated on
/// obs::metrics_enabled()). Names are the docs/OBSERVABILITY.md contract.
struct DseMetrics {
  obs::Counter& phase1_runs;
  obs::Counter& explorations;
  obs::Counter& work_items;
  obs::Counter& candidates;
  obs::Counter& mappings_pruned_feasibility;  ///< Eq. 2/3/11
  obs::Counter& shapes_pruned_util;           ///< Eq. 12 floor
  obs::Counter& reuse_pruned_pow2;            ///< pow2 middle-bound rule
  obs::Counter& items_pruned_bound;           ///< branch-and-bound rule
  obs::Counter& bound_seed_evals;             ///< floor-seeding evaluations
  obs::Counter& reuse_subtrees_pruned;        ///< within-DFS corner-bound rule
  obs::Counter& reuse_bound_evals;            ///< corner evaluations spent
  obs::Counter& reuse_evaluated;
  obs::Counter& reuse_rejected_bram;
  obs::Counter& rejected_soft_logic;
  obs::Counter& util_relaxations;
  obs::Counter& cancelled;
  obs::Histogram& phase1_ms;
  obs::Histogram& phase2_ms;

  static DseMetrics& get() {
    static DseMetrics* m = [] {
      obs::MetricsRegistry& r = obs::MetricsRegistry::global();
      return new DseMetrics{
          r.counter("dse_phase1_runs_total"),
          r.counter("dse_explorations_total"),
          r.counter("dse_work_items_total"),
          r.counter("dse_candidates_total"),
          r.counter("dse_mappings_pruned_feasibility_total"),
          r.counter("dse_shapes_pruned_util_total"),
          r.counter("dse_reuse_pruned_pow2_total"),
          r.counter("dse_items_pruned_bound_total"),
          r.counter("dse_bound_seed_evals_total"),
          r.counter("dse_reuse_subtrees_pruned_total"),
          r.counter("dse_reuse_bound_evals_total"),
          r.counter("dse_reuse_evaluated_total"),
          r.counter("dse_reuse_rejected_bram_total"),
          r.counter("dse_candidates_rejected_soft_logic_total"),
          r.counter("dse_util_relaxations_total"),
          r.counter("dse_cancelled_total"),
          r.histogram("dse_phase1_ms"),
          r.histogram("dse_phase2_ms"),
      };
    }();
    return *m;
  }
};

/// Publishes one enumerate_phase1 run (the delta between the caller's stats
/// before and after) into the global registry.
void publish_phase1_run(const DseStats& before, const DseStats& after,
                        std::size_t candidate_count, double wall_seconds) {
  if (!obs::metrics_enabled()) return;
  DseMetrics& m = DseMetrics::get();
  m.phase1_runs.add(1);
  m.work_items.add(after.work_items - before.work_items);
  m.candidates.add(static_cast<std::int64_t>(candidate_count));
  m.mappings_pruned_feasibility.add(
      (after.mappings_candidates - before.mappings_candidates) -
      (after.mappings_feasible - before.mappings_feasible));
  m.shapes_pruned_util.add((after.shapes_considered - before.shapes_considered) -
                           (after.shapes_after_prune - before.shapes_after_prune));
  m.reuse_pruned_pow2.add(
      (after.reuse_space_bruteforce - before.reuse_space_bruteforce) -
      (after.reuse_space_pow2 - before.reuse_space_pow2));
  m.items_pruned_bound.add(after.items_pruned_bound -
                           before.items_pruned_bound);
  m.bound_seed_evals.add(after.bound_seed_evaluated -
                         before.bound_seed_evaluated);
  m.reuse_subtrees_pruned.add(after.reuse_subtrees_pruned -
                              before.reuse_subtrees_pruned);
  m.reuse_bound_evals.add(after.reuse_bound_evals - before.reuse_bound_evals);
  m.reuse_evaluated.add(after.reuse_evaluated - before.reuse_evaluated);
  m.reuse_rejected_bram.add(after.reuse_bram_rejected -
                            before.reuse_bram_rejected);
  m.rejected_soft_logic.add(after.soft_logic_rejected -
                            before.soft_logic_rejected);
  m.phase1_ms.observe(wall_seconds * 1e3);
}

/// Flattened, allocation-free evaluator for the DSE inner loop. All model
/// semantics are identical to resource_model/perf_model; tests assert the
/// equivalence.
class LeanModel {
 public:
  LeanModel(const LoopNest& nest, const FpgaDevice& device, DataType dtype,
            double freq_mhz)
      : device_(device), freq_ghz_(freq_mhz * 1e-3) {
    num_loops_ = nest.num_loops();
    trips_ = nest.trip_counts();
    total_iters_ = nest.total_iterations();
    for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
      AccessInfo info;
      const AccessFunction& f = nest.accesses()[a].access;
      for (const AffineExpr& dim : f.indices) {
        std::vector<std::int64_t> coeffs(num_loops_);
        for (std::size_t l = 0; l < num_loops_; ++l) coeffs[l] = dim.coeff(l);
        info.dims.push_back(std::move(coeffs));
      }
      info.bytes_per_elem = bytes_per_element(dtype, nest, a);
      accesses_.push_back(std::move(info));
    }
  }

  struct Eval {
    double eff = 0.0;
    std::int64_t bram_blocks = 0;
    double pt_gops = 0.0;
    double mt_gops = 0.0;
    double throughput_gops = 0.0;
    double dram_traffic_bytes = 0.0;  ///< total off-chip bytes, all blocks
  };

  /// DSP efficiency for inner bounds t (Eq. 1; middle loops clip, so only
  /// the array-shape quantization wastes computation). Constant across the
  /// reuse search for a fixed shape.
  double efficiency(const std::vector<std::int64_t>& inner) const {
    double executed = 1.0;
    for (std::size_t l = 0; l < num_loops_; ++l) {
      executed *= static_cast<double>(ceil_div(trips_[l], inner[l]) * inner[l]);
    }
    return static_cast<double>(total_iters_) / executed;
  }

  /// Evaluates the full model at block trips b_l = s_l * t_l with the
  /// precomputed efficiency. `lanes` is prod(t), `num_pes` is rows*cols.
  Eval evaluate(const std::vector<std::int64_t>& block, double eff,
                std::int64_t lanes, std::int64_t num_pes) const {
    Eval out;
    out.eff = eff;
    double macs_per_block = 1.0;
    double num_blocks = 1.0;
    for (std::size_t l = 0; l < num_loops_; ++l) {
      macs_per_block *= static_cast<double>(block[l]);
      num_blocks *= static_cast<double>(ceil_div(trips_[l], block[l]));
    }

    // Eq. 5/6.
    double total_bytes = 0.0;
    double min_port_gops = 1e300;
    const double eff_ops_per_block = out.eff * 2.0 * macs_per_block;
    std::int64_t bram = 0;
    for (const AccessInfo& info : accesses_) {
      std::int64_t footprint = 1;
      for (const auto& coeffs : info.dims) {
        std::int64_t range = 1;
        for (std::size_t l = 0; l < num_loops_; ++l) {
          range += coeffs[l] * (block[l] - 1);
        }
        if (!checked_mul(footprint, range, &footprint)) {
          // A buffer footprint that overflows int64 cannot fit any device;
          // reject the shape instead of feeding wrapped (possibly negative)
          // sizes into the BRAM model below.
          out.bram_blocks = std::numeric_limits<std::int64_t>::max();
          return out;
        }
      }
      const double bytes =
          2.0 * static_cast<double>(round_up_pow2(footprint)) *
          info.bytes_per_elem;
      bram += static_cast<std::int64_t>(
                  std::ceil(bytes / static_cast<double>(device_.bram_bytes()))) +
              device_.bram_const_per_buffer;
      const double stream_bytes =
          static_cast<double>(footprint) * info.bytes_per_elem;
      total_bytes += stream_bytes;
      min_port_gops = std::min(
          min_port_gops,
          eff_ops_per_block * device_.bw_port_gbs / stream_bytes);
    }
    bram += static_cast<std::int64_t>(
        std::ceil(device_.bram_per_pe * static_cast<double>(num_pes)));
    out.bram_blocks = bram;

    // Eqs. 7-10.
    out.pt_gops = out.eff * static_cast<double>(lanes) * 2.0 * freq_ghz_;
    out.mt_gops = std::min(eff_ops_per_block * device_.bw_total_gbs / total_bytes,
                           min_port_gops);
    out.throughput_gops = std::min(out.pt_gops, out.mt_gops);
    out.dram_traffic_bytes = num_blocks * total_bytes;
    return out;
  }

  /// BRAM blocks only, bit-identical to evaluate()'s bram_blocks (same
  /// operations in the same order). The DFS prefix prune needs nothing
  /// else, and skipping the throughput/traffic arithmetic roughly halves
  /// the cost of the interior of the reuse search.
  std::int64_t bram_only(const std::vector<std::int64_t>& block,
                         std::int64_t num_pes) const {
    std::int64_t bram = 0;
    for (const AccessInfo& info : accesses_) {
      std::int64_t footprint = 1;
      for (const auto& coeffs : info.dims) {
        std::int64_t range = 1;
        for (std::size_t l = 0; l < num_loops_; ++l) {
          range += coeffs[l] * (block[l] - 1);
        }
        if (!checked_mul(footprint, range, &footprint)) {
          return std::numeric_limits<std::int64_t>::max();
        }
      }
      const double bytes =
          2.0 * static_cast<double>(round_up_pow2(footprint)) *
          info.bytes_per_elem;
      bram += static_cast<std::int64_t>(
                  std::ceil(bytes / static_cast<double>(device_.bram_bytes()))) +
              device_.bram_const_per_buffer;
    }
    bram += static_cast<std::int64_t>(
        std::ceil(device_.bram_per_pe * static_cast<double>(num_pes)));
    return bram;
  }

  const std::vector<std::int64_t>& trips() const { return trips_; }
  std::int64_t total_iterations() const { return total_iters_; }

 private:
  struct AccessInfo {
    std::vector<std::vector<std::int64_t>> dims;  ///< coeff per (dim, loop)
    double bytes_per_elem = 0.0;
  };

  const FpgaDevice& device_;
  double freq_ghz_;
  std::size_t num_loops_ = 0;
  std::vector<std::int64_t> trips_;
  std::int64_t total_iters_ = 0;
  std::vector<AccessInfo> accesses_;
};

/// Memoized candidate middle bounds keyed by cap = ceil(trip / t). The
/// phase-1 sweep hits the same few caps for every (mapping, shape) work
/// item, so deriving the vectors once per cap removes the repeated
/// pow2_candidates_covering / iota work from the inner loop. Entries are
/// node-based (unordered_map), so returned references stay valid across
/// inserts. One cache per worker thread — no locking.
class MiddleCandidateCache {
 public:
  /// Powers of two covering `cap` (also the pow2 search-space size).
  const std::vector<std::int64_t>& pow2_covering(std::int64_t cap) {
    auto it = pow2_.find(cap);
    if (it == pow2_.end()) {
      it = pow2_.emplace(cap, pow2_candidates_covering(cap)).first;
    }
    return it->second;
  }

  /// Candidate middle bounds for one loop: powers of two covering `cap`
  /// (or all integers 1..cap when pow2 pruning is disabled).
  const std::vector<std::int64_t>& middles(std::int64_t cap, bool pow2_only) {
    if (pow2_only) return pow2_covering(cap);
    auto it = all_.find(cap);
    if (it == all_.end()) {
      std::vector<std::int64_t> all(static_cast<std::size_t>(cap));
      for (std::int64_t v = 1; v <= cap; ++v) {
        all[static_cast<std::size_t>(v - 1)] = v;
      }
      it = all_.emplace(cap, std::move(all)).first;
    }
    return it->second;
  }

 private:
  std::unordered_map<std::int64_t, std::vector<std::int64_t>> pow2_;
  std::unordered_map<std::int64_t, std::vector<std::int64_t>> all_;
};

/// One (mapping, shape) unit of the phase-1 sweep.
struct Phase1Item {
  const SystolicMapping* mapping = nullptr;
  ArrayShape shape;
};

/// Optimal middle bounds for a fixed (mapping, shape) — the inner loop of
/// phase 1. The LeanModel and candidate cache are hoisted by the caller so
/// the sweep constructs neither per work item. Writes the winning middle
/// bounds to `out_s` (the caller builds the DesignPoint, and the sweep memo
/// stores the raw bounds).
bool best_reuse_impl(const LoopNest& nest, const LeanModel& model,
                     const FpgaDevice& device, const DseOptions& options,
                     const SystolicMapping& mapping, const ArrayShape& shape,
                     MiddleCandidateCache& cache,
                     std::vector<std::int64_t>* out_s, DseStats* stats,
                     double floor_gops =
                         -std::numeric_limits<double>::infinity(),
                     bool mt_monotone = false) {
  const std::size_t n = nest.num_loops();
  std::vector<std::int64_t> inner(n, 1);
  inner[mapping.row_loop] = shape.rows;
  inner[mapping.col_loop] = shape.cols;
  inner[mapping.vec_loop] = shape.vec;

  std::vector<const std::vector<std::int64_t>*> candidates(n);
  std::int64_t pow2_space = 1;
  std::int64_t brute_space = 1;
  for (std::size_t l = 0; l < n; ++l) {
    const std::int64_t cap = ceil_div(nest.loop(l).trip, inner[l]);
    candidates[l] = &cache.middles(cap, options.pow2_middle);
    // Search-space sizes are reporting-only; saturate rather than wrap on
    // pathologically deep nests.
    pow2_space = sat_mul(
        pow2_space, static_cast<std::int64_t>(cache.pow2_covering(cap).size()));
    brute_space = sat_mul(brute_space, cap);
  }
  if (stats != nullptr) {
    stats->reuse_space_pow2 += pow2_space;
    stats->reuse_space_bruteforce += brute_space;
  }

  const std::int64_t lanes = shape.num_lanes();
  const std::int64_t num_pes = shape.num_pes();
  const std::int64_t bram_budget = static_cast<std::int64_t>(
      options.max_bram_util * static_cast<double>(device.bram_blocks));

  std::vector<std::int64_t> block(n, 0);
  std::vector<std::int64_t> best_s;
  const double eff = model.efficiency(inner);
  double best_gops = -1.0;
  double best_traffic = 0.0;
  std::int64_t best_bram = 0;
  std::int64_t evaluated = 0;
  std::int64_t bram_rejected = 0;
  std::int64_t bound_evals = 0;
  std::int64_t subtrees_pruned = 0;

  // Corner-bound subtree skip. With a finite floor and a stride-1 access
  // structure, MT — and therefore min(PT, MT) — is monotone non-decreasing
  // in every middle bound, so the throughput of a subtree's maximal corner
  // (current prefix, every remaining loop at its largest candidate)
  // upper-bounds every leaf beneath it. A corner strictly below the floor
  // (with margin covering both the FP rounding of the corner evaluation and
  // the 1e-12 tie window of the best-leaf selection) proves no leaf in the
  // subtree can reach the top-K floor or tie with a leaf that does, so the
  // subtree is skipped. The reported best may then understate an item whose
  // true best lies below the floor — such items can never enter the top-K,
  // which stays bit-identical to the exhaustive sweep (docs/MODEL.md).
  const bool floor_skip = mt_monotone && std::isfinite(floor_gops);

  // DFS over middle bounds. BRAM is monotone non-decreasing in every s_l, so
  // once a prefix with all-minimal suffix exceeds the budget, every larger
  // choice at the current level can be skipped.
  std::vector<std::int64_t> current(n, 1);
  auto dfs = [&](auto&& self, std::size_t depth) -> void {
    // Depth 0 is covered by the caller's per-item bound (same corner).
    if (floor_skip && depth > 0 && depth < n) {
      for (std::size_t l = 0; l < n; ++l) {
        block[l] = (l < depth ? current[l] : candidates[l]->back()) * inner[l];
      }
      const LeanModel::Eval corner =
          model.evaluate(block, eff, lanes, num_pes);
      ++bound_evals;
      if (corner.bram_blocks != std::numeric_limits<std::int64_t>::max() &&
          corner.throughput_gops * (1.0 + 1e-9) + 1e-12 < floor_gops) {
        ++subtrees_pruned;
        return;
      }
    }
    if (depth == n) {
      for (std::size_t l = 0; l < n; ++l) block[l] = current[l] * inner[l];
      const LeanModel::Eval eval = model.evaluate(block, eff, lanes, num_pes);
      ++evaluated;
      if (eval.bram_blocks > bram_budget) {
        ++bram_rejected;
        return;
      }
      // Maximize throughput; among ties, prefer the reuse strategy with the
      // least total off-chip traffic ("balance data reuse and memory
      // bandwidth", §2.3), then the smaller buffers.
      const bool better =
          best_s.empty() || eval.throughput_gops > best_gops + 1e-12 ||
          (eval.throughput_gops > best_gops - 1e-12 &&
           (eval.dram_traffic_bytes < best_traffic * (1.0 - 1e-12) ||
            (eval.dram_traffic_bytes <= best_traffic * (1.0 + 1e-12) &&
             eval.bram_blocks < best_bram)));
      if (better) {
        best_gops = eval.throughput_gops;
        best_traffic = eval.dram_traffic_bytes;
        best_bram = eval.bram_blocks;
        best_s = current;
      }
      return;
    }
    for (const std::int64_t s : *candidates[depth]) {
      current[depth] = s;
      // Prune: lower-bound BRAM with minimal suffix (BRAM-only evaluation —
      // throughput is irrelevant to this cut).
      for (std::size_t l = 0; l < n; ++l) {
        block[l] = (l <= depth ? current[l] : 1) * inner[l];
      }
      if (model.bram_only(block, num_pes) > bram_budget) {
        break;  // candidates are ascending
      }
      self(self, depth + 1);
    }
    current[depth] = 1;
  };
  dfs(dfs, 0);

  if (stats != nullptr) {
    stats->reuse_evaluated += evaluated;
    stats->reuse_bram_rejected += bram_rejected;
    stats->reuse_bound_evals += bound_evals;
    stats->reuse_subtrees_pruned += subtrees_pruned;
  }
  if (best_s.empty()) return false;
  *out_s = std::move(best_s);
  return true;
}

/// Per-item key text for the sweep memo (the context text carries
/// everything else).
std::string item_key_text(const SystolicMapping& mapping,
                          const ArrayShape& shape) {
  return strformat("m=%zu,%zu,%zu t=%lldx%lldx%lld",
                   mapping.row_loop, mapping.col_loop, mapping.vec_loop,
                   static_cast<long long>(shape.rows),
                   static_cast<long long>(shape.cols),
                   static_cast<long long>(shape.vec));
}

}  // namespace

std::string sweep_context_text(const LoopNest& nest, const FpgaDevice& device,
                               DataType dtype, const DseOptions& options,
                               bool include_trips) {
  // Every input the reuse DFS reads, rendered exactly (%.17g round-trips a
  // double). Two work items with equal context + item texts are therefore
  // the same computation, which is what makes an exact-tier memo hit
  // bit-identical to re-running the DFS.
  std::string out = strformat(
      "sweep-ctx v1 trips=%d loops=%zu\n", include_trips ? 1 : 0,
      nest.num_loops());
  for (std::size_t l = 0; l < nest.num_loops(); ++l) {
    if (include_trips) {
      out += strformat("loop %lld\n",
                       static_cast<long long>(nest.loop(l).trip));
    }
  }
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    const AccessFunction& f = nest.accesses()[a].access;
    out += strformat("access bpe=%.17g",
                     bytes_per_element(dtype, nest, a));
    for (const AffineExpr& dim : f.indices) {
      out += " [";
      for (std::size_t l = 0; l < nest.num_loops(); ++l) {
        out += strformat("%lld,", static_cast<long long>(dim.coeff(l)));
      }
      out += "]";
    }
    out += "\n";
  }
  out += strformat(
      "device bram_blocks=%lld bram_kbits=%lld c_b=%lld c_p=%.17g "
      "bw_total=%.17g bw_port=%.17g\n",
      static_cast<long long>(device.bram_blocks),
      static_cast<long long>(device.bram_kbits),
      static_cast<long long>(device.bram_const_per_buffer), device.bram_per_pe,
      device.bw_total_gbs, device.bw_port_gbs);
  out += strformat("freq=%.17g pow2_middle=%d max_bram_util=%.17g\n",
                   options.assumed_freq_mhz, options.pow2_middle ? 1 : 0,
                   options.max_bram_util);
  return out;
}

std::string DseStats::summary() const {
  std::string out = strformat(
      "mappings %lld/%lld feasible; shapes %lld -> %lld after Eq.12 prune; "
      "reuse evaluated %lld (pow2 space %lld, brute-force space %lld); "
      "%lld work items on %d jobs; phase1 %.2fs (cpu %.2fs) phase2 %.2fs",
      static_cast<long long>(mappings_feasible),
      static_cast<long long>(mappings_candidates),
      static_cast<long long>(shapes_considered),
      static_cast<long long>(shapes_after_prune),
      static_cast<long long>(reuse_evaluated),
      static_cast<long long>(reuse_space_pow2),
      static_cast<long long>(reuse_space_bruteforce),
      static_cast<long long>(work_items), jobs_used, phase1_seconds,
      phase1_cpu_seconds, phase2_seconds);
  if (items_pruned_bound > 0 || bound_seed_evaluated > 0) {
    out += strformat("; B&B pruned %lld items (%lld seed evals)",
                     static_cast<long long>(items_pruned_bound),
                     static_cast<long long>(bound_seed_evaluated));
  }
  if (reuse_subtrees_pruned > 0) {
    out += strformat("; corner bound skipped %lld subtrees (%lld bound evals)",
                     static_cast<long long>(reuse_subtrees_pruned),
                     static_cast<long long>(reuse_bound_evals));
  }
  if (memo_exact_hits > 0 || memo_hint_seeds > 0) {
    out += strformat("; sweep memo %lld exact hits, %lld hint seeds",
                     static_cast<long long>(memo_exact_hits),
                     static_cast<long long>(memo_hint_seeds));
  }
  if (util_relaxations > 0) {
    out += strformat("; c_s relaxed %lldx to %.3f",
                     static_cast<long long>(util_relaxations),
                     effective_min_dsp_util);
  }
  if (cancelled) out += "; cancelled (partial sweep)";
  return out;
}

const DseCandidate* DseResult::best() const {
  const DseCandidate* best = nullptr;
  for (const DseCandidate& c : top) {
    if (best == nullptr || c.realized_gops() > best->realized_gops()) {
      best = &c;
    }
  }
  return best;
}

DesignSpaceExplorer::DesignSpaceExplorer(FpgaDevice device, DataType dtype,
                                         DseOptions options)
    : device_(std::move(device)), dtype_(dtype), options_(options) {}

std::vector<ArrayShape> enumerate_shapes(const LoopNest& nest,
                                         const SystolicMapping& mapping,
                                         const FpgaDevice& device,
                                         DataType dtype,
                                         const DseOptions& options,
                                         std::int64_t* considered) {
  const std::int64_t capacity = device_mac_capacity(device, dtype);
  const std::int64_t min_lanes = static_cast<std::int64_t>(
      std::ceil(options.min_dsp_util * static_cast<double>(capacity)));

  // An inner extent beyond the next power of two above the trip count only
  // adds pure waste, so cap each dimension there (and at the global caps).
  auto dim_cap = [&](std::size_t loop, std::int64_t global_cap) {
    return std::min(global_cap, round_up_pow2(nest.loop(loop).trip));
  };
  const std::int64_t row_cap = dim_cap(mapping.row_loop, options.max_rows);
  const std::int64_t col_cap = dim_cap(mapping.col_loop, options.max_cols);
  const std::int64_t vec_cap = dim_cap(mapping.vec_loop, options.max_vec);

  std::vector<std::int64_t> vec_values;
  if (options.pow2_vec_only) {
    vec_values = pow2_candidates(vec_cap);
  } else {
    for (std::int64_t v = 1; v <= vec_cap; ++v) vec_values.push_back(v);
  }

  std::vector<ArrayShape> shapes;
  std::int64_t considered_count = 0;
  for (std::int64_t rows = 1; rows <= row_cap; ++rows) {
    for (std::int64_t cols = 1; cols <= col_cap; ++cols) {
      for (const std::int64_t vec : vec_values) {
        std::int64_t lanes;
        if (!checked_mul(rows, cols, &lanes) ||
            !checked_mul(lanes, vec, &lanes)) {
          continue;  // overflowed lane count certainly exceeds any capacity
        }
        if (lanes > capacity) continue;
        ++considered_count;
        if (lanes < min_lanes) continue;  // Eq. 12
        shapes.push_back(ArrayShape{rows, cols, vec});
      }
    }
  }
  if (considered != nullptr) *considered += considered_count;
  return shapes;
}

bool DesignSpaceExplorer::best_reuse_strategy(const LoopNest& nest,
                                              const SystolicMapping& mapping,
                                              const ArrayShape& shape,
                                              DesignPoint* out,
                                              DseStats* stats) const {
  const LeanModel model(nest, device_, dtype_, options_.assumed_freq_mhz);
  MiddleCandidateCache cache;
  std::vector<std::int64_t> best_s;
  if (!best_reuse_impl(nest, model, device_, options_, mapping, shape, cache,
                       &best_s, stats)) {
    return false;
  }
  *out = DesignPoint(nest, mapping, shape, std::move(best_s));
  return true;
}

std::vector<DseCandidate> DesignSpaceExplorer::enumerate_phase1(
    const LoopNest& nest, DseStats* stats) const {
  obs::ScopedSpan phase1_span("dse.phase1", "dse");
  DseStats local;
  DseStats* st = stats != nullptr ? stats : &local;
  const DseStats before = *st;

  // Flatten the sweep into (mapping, shape) work items so it can be
  // partitioned across workers. Each worker evaluates its ranges into
  // per-item slots and a per-worker stats block; the merge below reads slots
  // in item order, so the candidate list entering the sort is byte-identical
  // to the sequential sweep at any thread count (and integer stat counters
  // sum commutatively).
  std::vector<SystolicMapping> mappings;
  std::vector<Phase1Item> items;
  {
    obs::ScopedSpan enumerate_span("dse.phase1.enumerate", "dse");
    const ReuseMatrix reuse = analyze_reuse(nest);
    st->mappings_candidates += num_candidate_mappings(nest);
    mappings = enumerate_feasible_mappings(nest, reuse);
    st->mappings_feasible += static_cast<std::int64_t>(mappings.size());
    for (const SystolicMapping& mapping : mappings) {
      const std::vector<ArrayShape> shapes = enumerate_shapes(
          nest, mapping, device_, dtype_, options_, &st->shapes_considered);
      st->shapes_after_prune += static_cast<std::int64_t>(shapes.size());
      for (const ArrayShape& shape : shapes) {
        items.push_back(Phase1Item{&mapping, shape});
      }
    }
    enumerate_span.arg("mappings", static_cast<std::int64_t>(mappings.size()));
    enumerate_span.arg("work_items", static_cast<std::int64_t>(items.size()));
  }
  // Execution window of the sharding tier (serve/shard.h). Items are
  // enumerated in full on every node — indices are global — but only
  // [wb, we) is evaluated here. The default window is the whole list.
  const std::int64_t total_items = static_cast<std::int64_t>(items.size());
  const std::int64_t wb =
      std::clamp<std::int64_t>(options_.shard_begin, 0, total_items);
  const std::int64_t we =
      options_.shard_end < 0
          ? total_items
          : std::clamp<std::int64_t>(options_.shard_end, wb, total_items);
  st->work_items += we - wb;

  const LeanModel model(nest, device_, dtype_, options_.assumed_freq_mhz);
  // Stride-1 access structure (every affine coefficient 0 or 1): the
  // precondition of the MT-monotonicity rules — the per-item MT bound
  // refinement and the within-DFS corner-bound subtree skip (docs/MODEL.md,
  // "Dominance pruning").
  bool mt_monotone = true;
  for (std::size_t a = 0; a < nest.num_accesses() && mt_monotone; ++a) {
    const AccessFunction& f = nest.accesses()[a].access;
    for (const AffineExpr& dim : f.indices) {
      for (std::size_t l = 0; l < nest.num_loops(); ++l) {
        const std::int64_t c = dim.coeff(l);
        if (c < 0 || c > 1) {
          mt_monotone = false;
          break;
        }
      }
      if (!mt_monotone) break;
    }
  }
  ThreadPool pool(options_.jobs);
  st->jobs_used = pool.jobs();
  const std::size_t workers = static_cast<std::size_t>(pool.jobs());
  std::vector<std::optional<DseCandidate>> slots(items.size());
  std::vector<DseStats> worker_stats(workers);
  std::vector<MiddleCandidateCache> caches(workers);
  std::vector<double> busy(workers, 0.0);

  // Bound pass: the Eq. 8 compute-bound PT of every item, batched through
  // the SoA kernel. PT depends only on the shape t (efficiency is a function
  // of t alone; the middle bounds s never raise it), so pt_gops[i] is an
  // admissible upper bound on the throughput of every reuse strategy of item
  // i — and bit-identical to the pt_gops estimate_performance would report
  // for any candidate of that item.
  ShapeBatch batch;
  batch.resize(items.size());
  {
    obs::ScopedSpan bound_span("dse.phase1.bound", "dse");
    bound_span.arg("items", static_cast<std::int64_t>(items.size()));
    std::vector<std::int64_t> inner(nest.num_loops(), 1);
    for (std::size_t i = 0; i < items.size(); ++i) {
      const Phase1Item& item = items[i];
      std::fill(inner.begin(), inner.end(), 1);
      inner[item.mapping->row_loop] = item.shape.rows;
      inner[item.mapping->col_loop] = item.shape.cols;
      inner[item.mapping->vec_loop] = item.shape.vec;
      batch.rows[i] = item.shape.rows;
      batch.cols[i] = item.shape.cols;
      batch.vec[i] = item.shape.vec;
      batch.lanes[i] = static_cast<double>(item.shape.num_lanes());
      batch.executed[i] =
          static_cast<double>(executed_iterations_for_inner(nest, inner));
    }
    batch_pt_bounds(batch, static_cast<double>(nest.total_iterations()),
                    options_.assumed_freq_mhz * 1e-3);
  }

  // Sweep-memo keys. The exact tier keys on the full DFS input (trips
  // included) and replays results verbatim; the hint tier drops the trips so
  // layers differing only in H/W can seed each other's floors.
  SweepMemo* const memo = options_.sweep_memo;
  std::string exact_ctx;
  std::string hint_ctx;
  std::vector<std::string> item_keys;
  if (memo != nullptr) {
    exact_ctx =
        sweep_context_text(nest, device_, dtype_, options_, /*include_trips=*/true);
    hint_ctx = sweep_context_text(nest, device_, dtype_, options_,
                                  /*include_trips=*/false);
    item_keys.resize(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      item_keys[i] = item_key_text(*items[i].mapping, items[i].shape);
    }
  }

  // Resolves one work item into its slot: sweep-memo exact tier first, then
  // the reuse DFS. Identical inputs produce identical slot bytes either way,
  // so a warm memo never changes a result, only the time to reach it. A
  // finite `floor` arms the corner-bound subtree skip inside the DFS; the
  // result may then understate an item whose true best lies below the floor,
  // so such runs are never stored into the memo — only exact (floor-free)
  // results are shared across requests.
  auto evaluate_item = [&](std::int64_t i, MiddleCandidateCache& cache,
                           DseStats& ws, double floor) {
    const Phase1Item& item = items[static_cast<std::size_t>(i)];
    std::vector<std::int64_t> best_s;
    bool found = false;
    SweepMemo::ExactResult cached;
    if (memo != nullptr &&
        memo->lookup_exact(exact_ctx, item_keys[static_cast<std::size_t>(i)],
                           &cached)) {
      ++ws.memo_exact_hits;
      found = cached.found_fit;
      best_s = std::move(cached.best_s);
    } else {
      found = best_reuse_impl(nest, model, device_, options_, *item.mapping,
                              item.shape, cache, &best_s, &ws, floor,
                              mt_monotone);
      if (memo != nullptr && !(mt_monotone && std::isfinite(floor))) {
        SweepMemo::ExactResult fresh;
        fresh.found_fit = found;
        fresh.best_s = best_s;
        const std::string& key = item_keys[static_cast<std::size_t>(i)];
        memo->store_exact(exact_ctx, key, fresh);
        if (found) memo->store_hint(hint_ctx, key, best_s);
      }
    }
    if (!found) return;
    DseCandidate candidate;
    candidate.design =
        DesignPoint(nest, *item.mapping, item.shape, std::move(best_s));
    candidate.estimate = estimate_performance(nest, candidate.design, device_,
                                              dtype_, options_.assumed_freq_mhz);
    candidate.resources =
        model_resources(nest, candidate.design, device_, dtype_);
    if (options_.enforce_soft_logic && !candidate.resources.report.fits()) {
      ++ws.soft_logic_rejected;
      return;
    }
    slots[static_cast<std::size_t>(i)] = std::move(candidate);
  };

  // Branch-and-bound floor. A sequential seed pass fully evaluates the top_k
  // items with the highest bounds; the K-th largest accepted throughput
  // becomes the prune floor for the parallel sweep. Every contribution is
  // the real throughput of a distinct item (at most one per item, each <=
  // that item's best), so the floor never exceeds the true K-th best
  // estimate and no exhaustive top-K member is pruned (docs/MODEL.md). The
  // seed pass is sequential and ignores the deterministic item cut (it polls
  // only cancelled()), which keeps the floor — and therefore every prune
  // decision — a pure function of the request at any jobs value and any cut
  // position.
  const bool prune =
      options_.bound_prune && options_.top_k > 0 && we > wb &&
      !options_.cancel.cancelled();
  std::vector<char> resolved(items.size(), 0);
  std::vector<double> bounds;
  double floor_gops = -std::numeric_limits<double>::infinity();
  DseStats seed_stats;
  if (prune) {
    obs::ScopedSpan seed_span("dse.phase1.seed", "dse");
    bounds = batch.pt_gops;
    // MT refinement of the bound. When every access coefficient is 0 or 1
    // (stride-1 structure), prod(block)/footprint_a is monotone
    // non-decreasing in every middle bound, so the MT of the maximal grid
    // point upper-bounds the MT of every reachable reuse strategy — in real
    // arithmetic. Each MT evaluation is a handful of IEEE operations
    // (relative error far below 1e-13), so inflating by 1e-9 provably
    // absorbs the rounding slack: bound >= min(PT, MT(s)) >= the item's best
    // throughput, bit for bit. Items with a strided access keep the PT-only
    // bound (docs/MODEL.md, "Dominance pruning").
    if (mt_monotone) {
      const std::size_t n = nest.num_loops();
      std::vector<std::int64_t> inner(n, 1);
      std::vector<std::int64_t> block(n, 0);
      // Window-only: bounds are read solely for window items (seed order and
      // the parallel sweep both iterate [wb, we)).
      for (std::size_t i = static_cast<std::size_t>(wb);
           i < static_cast<std::size_t>(we); ++i) {
        const Phase1Item& item = items[i];
        std::fill(inner.begin(), inner.end(), 1);
        inner[item.mapping->row_loop] = item.shape.rows;
        inner[item.mapping->col_loop] = item.shape.cols;
        inner[item.mapping->vec_loop] = item.shape.vec;
        for (std::size_t l = 0; l < n; ++l) {
          const std::int64_t cap = ceil_div(nest.loop(l).trip, inner[l]);
          const std::int64_t s_max = options_.pow2_middle
                                         ? caches[0].pow2_covering(cap).back()
                                         : cap;
          block[l] = s_max * inner[l];
        }
        const LeanModel::Eval top = model.evaluate(
            block, model.efficiency(inner), item.shape.num_lanes(),
            item.shape.num_pes());
        if (top.bram_blocks == std::numeric_limits<std::int64_t>::max()) {
          continue;  // footprint overflowed: keep the PT-only bound
        }
        bounds[i] = std::min(bounds[i], top.mt_gops * (1.0 + 1e-9));
      }
    }
    const std::size_t top_k = static_cast<std::size_t>(options_.top_k);
    // Seed (and prune) inside the window only: a windowed sweep's floor is a
    // function of its own items, so its surviving candidate list is exactly
    // the full sweep's list restricted to the window (same admissibility
    // argument, applied per window).
    std::vector<std::int64_t> order(static_cast<std::size_t>(we - wb));
    std::iota(order.begin(), order.end(), wb);
    std::sort(order.begin(), order.end(),
              [&](std::int64_t a, std::int64_t b) {
                const double pa = bounds[static_cast<std::size_t>(a)];
                const double pb = bounds[static_cast<std::size_t>(b)];
                if (pa != pb) return pa > pb;
                return a < b;
              });
    // Walk the bound-sorted order until top_k items produced accepted
    // candidates: when the highest-bound items are BRAM-infeasible or
    // soft-logic-rejected (common on wide layers), stopping after top_k
    // ranks would leave fewer than K contributions and no floor at all. The
    // walk length is a deterministic function of the request, so prune
    // decisions stay jobs-invariant.
    std::vector<double> contributions;
    contributions.reserve(top_k);
    std::size_t seed_n = 0;
    while (seed_n < order.size() && contributions.size() < top_k) {
      if (options_.cancel.cancelled()) {
        seed_stats.cancelled = true;
        break;
      }
      const std::int64_t idx = order[seed_n++];
      evaluate_item(idx, caches[0], seed_stats,
                    -std::numeric_limits<double>::infinity());
      resolved[static_cast<std::size_t>(idx)] = 1;
      ++seed_stats.bound_seed_evaluated;
      const auto& slot = slots[static_cast<std::size_t>(idx)];
      if (slot.has_value()) contributions.push_back(slot->estimated_gops());
    }

    // Hint tier: middle bounds remembered from sweeps over other nests with
    // the same access structure (H/W-only-differing layers). Each hint is
    // clamped into this item's candidate grid and fully evaluated, so a
    // contribution is an achievable throughput of that item; with
    // max_bram_util <= 1.0 the soft-logic verdict is shape-invariant among
    // budget-fitting designs, so an accepted hint implies the item's DFS
    // best is accepted too — the floor stays admissible. Gated on an inert
    // cancel token: a truncated partial result must not depend on what a
    // shared cache happened to contain.
    if (memo != nullptr && options_.cancel.inert() &&
        options_.max_bram_util <= 1.0) {
      const std::size_t hint_end = std::min(order.size(), seed_n + 4 * top_k);
      const std::int64_t bram_budget = static_cast<std::int64_t>(
          options_.max_bram_util * static_cast<double>(device_.bram_blocks));
      const std::size_t n = nest.num_loops();
      std::vector<std::int64_t> hint_s;
      std::vector<std::int64_t> inner(n, 1);
      std::vector<std::int64_t> block(n, 0);
      for (std::size_t r = seed_n; r < hint_end; ++r) {
        const std::size_t idx = static_cast<std::size_t>(order[r]);
        hint_s.clear();
        if (!memo->lookup_hint(hint_ctx, item_keys[idx], &hint_s)) continue;
        if (hint_s.size() != n) continue;
        const Phase1Item& item = items[idx];
        std::fill(inner.begin(), inner.end(), 1);
        inner[item.mapping->row_loop] = item.shape.rows;
        inner[item.mapping->col_loop] = item.shape.cols;
        inner[item.mapping->vec_loop] = item.shape.vec;
        bool ok = true;
        for (std::size_t l = 0; l < n; ++l) {
          const std::int64_t cap = ceil_div(nest.loop(l).trip, inner[l]);
          std::int64_t s = std::min(hint_s[l], cap);
          if (s < 1) s = 1;
          if (options_.pow2_middle) {
            // Clamp into the pow2 grid: largest power of two <= s, then cap
            // at the covering bound (the grid's last element).
            s = std::int64_t{1} << floor_log2(s);
            const std::int64_t covering =
                caches[0].pow2_covering(cap).back();
            if (s > covering) s = covering;
          }
          if (s < 1 || s > std::max<std::int64_t>(cap, 1)) {
            ok = false;
            break;
          }
          hint_s[l] = s;
          block[l] = s * inner[l];
        }
        if (!ok) continue;
        if (model.bram_only(block, item.shape.num_pes()) > bram_budget) {
          continue;
        }
        DesignPoint hinted(nest, *item.mapping, item.shape, hint_s);
        const PerfEstimate est = estimate_performance(
            nest, hinted, device_, dtype_, options_.assumed_freq_mhz);
        if (options_.enforce_soft_logic) {
          const ResourceUsage res =
              model_resources(nest, hinted, device_, dtype_);
          if (!res.report.fits()) continue;
        }
        contributions.push_back(est.throughput_gops);
        ++seed_stats.memo_hint_seeds;
      }
    }

    if (contributions.size() >= top_k) {
      std::nth_element(contributions.begin(),
                       contributions.begin() + static_cast<std::ptrdiff_t>(top_k - 1),
                       contributions.end(), std::greater<double>());
      floor_gops = contributions[top_k - 1];
    }
    seed_span.arg("seeded", static_cast<std::int64_t>(seed_n));
    seed_span.arg("hints", seed_stats.memo_hint_seeds);
  }

  pool.for_each(
      we - wb,
      [&](std::int64_t begin, std::int64_t end, int worker) {
        // One shard span per dequeued range (~8 per worker) — granular
        // enough to see load balance in the trace, far off the per-item
        // hot path. Its clock is also the per-worker busy timer.
        obs::ScopedSpan shard("dse.phase1.shard", "dse");
        shard.arg("begin", begin);
        shard.arg("end", end);
        shard.arg("worker", worker);
        DseStats& ws = worker_stats[static_cast<std::size_t>(worker)];
        MiddleCandidateCache& cache = caches[static_cast<std::size_t>(worker)];
        for (std::int64_t i = begin; i < end; ++i) {
          // The pool iterates window-relative indices; items are addressed
          // by their global index so slots, bounds and the deterministic
          // item cut agree across any window placement.
          const std::int64_t idx = wb + i;
          // Cooperative cancellation poll, per work item: one relaxed load
          // (plus a clock read only when a deadline is armed) against an
          // item that costs orders of magnitude more. cut(idx) folds in the
          // deterministic item cut, an expired deadline, and an explicit
          // request_cancel(); the rest of this shard — and, via the same
          // check at its own first item, every later shard — is skipped,
          // leaving the already-filled slots as the best-so-far partial.
          if (options_.cancel.cut(idx)) {
            ws.cancelled = true;
            break;
          }
          if (resolved[static_cast<std::size_t>(idx)]) continue;
          // Branch-and-bound: strictly below the floor means no reuse
          // strategy of this item can enter the top-K (ties survive, so the
          // K-boundary ordering matches the exhaustive sweep bit for bit).
          if (prune && bounds[static_cast<std::size_t>(idx)] < floor_gops) {
            ++ws.items_pruned_bound;
            continue;
          }
          evaluate_item(idx, cache, ws, floor_gops);
        }
        busy[static_cast<std::size_t>(worker)] += shard.elapsed_seconds();
      });

  worker_stats.push_back(seed_stats);
  for (const DseStats& ws : worker_stats) {
    st->reuse_evaluated += ws.reuse_evaluated;
    st->reuse_bram_rejected += ws.reuse_bram_rejected;
    st->soft_logic_rejected += ws.soft_logic_rejected;
    st->reuse_space_pow2 += ws.reuse_space_pow2;
    st->reuse_space_bruteforce += ws.reuse_space_bruteforce;
    st->items_pruned_bound += ws.items_pruned_bound;
    st->bound_seed_evaluated += ws.bound_seed_evaluated;
    st->reuse_subtrees_pruned += ws.reuse_subtrees_pruned;
    st->reuse_bound_evals += ws.reuse_bound_evals;
    st->memo_exact_hits += ws.memo_exact_hits;
    st->memo_hint_seeds += ws.memo_hint_seeds;
    st->cancelled = st->cancelled || ws.cancelled;
  }
  for (const double b : busy) st->phase1_cpu_seconds += b;

  std::vector<DseCandidate> candidates;
  candidates.reserve(static_cast<std::size_t>(we - wb));
  for (std::int64_t i = wb; i < we; ++i) {
    std::optional<DseCandidate>& slot = slots[static_cast<std::size_t>(i)];
    if (slot.has_value()) candidates.push_back(std::move(*slot));
  }
  // stable_sort: slots arrive in item order, so candidates tied on both sort
  // keys keep that order — including across the pruned/exhaustive pair,
  // whose surviving lists agree on every item at or above the floor.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const DseCandidate& a, const DseCandidate& b) {
                     if (a.estimated_gops() != b.estimated_gops()) {
                       return a.estimated_gops() > b.estimated_gops();
                     }
                     return a.resources.bram_blocks < b.resources.bram_blocks;
                   });
  const double wall = phase1_span.elapsed_seconds();
  st->phase1_seconds += wall;
  phase1_span.arg("work_items", st->work_items - before.work_items);
  phase1_span.arg("candidates", static_cast<std::int64_t>(candidates.size()));
  publish_phase1_run(before, *st, candidates.size(), wall);
  return candidates;
}

std::int64_t DesignSpaceExplorer::count_phase1_items(
    const LoopNest& nest) const {
  const ReuseMatrix reuse = analyze_reuse(nest);
  const std::vector<SystolicMapping> mappings =
      enumerate_feasible_mappings(nest, reuse);
  std::int64_t count = 0;
  for (const SystolicMapping& mapping : mappings) {
    count += static_cast<std::int64_t>(
        enumerate_shapes(nest, mapping, device_, dtype_, options_).size());
  }
  return count;
}

void DesignSpaceExplorer::run_phase2(const LoopNest& nest,
                                     std::vector<DseCandidate>& candidates)
    const {
  // Each candidate's pseudo-P&R is independent and written in place, so the
  // parallel sweep is trivially order-insensitive.
  ThreadPool pool(options_.jobs);
  pool.for_each(static_cast<std::int64_t>(candidates.size()),
                [&](std::int64_t begin, std::int64_t end, int /*worker*/) {
                  for (std::int64_t i = begin; i < end; ++i) {
                    // Deadline poll only (the deterministic item cut indexes
                    // phase-1 work items, not this top-K list): candidates
                    // the cut skips keep realized_freq_mhz == 0 and best()
                    // falls back to the estimated ranking.
                    if (options_.cancel.cancelled()) return;
                    DseCandidate& candidate =
                        candidates[static_cast<std::size_t>(i)];
                    candidate.realized_freq_mhz = pseudo_pnr_frequency_mhz(
                        device_, candidate.resources.report,
                        candidate.design.signature());
                    candidate.realized = estimate_performance(
                        nest, candidate.design, device_, dtype_,
                        candidate.realized_freq_mhz);
                  }
                });
}

DseResult DesignSpaceExplorer::explore(const LoopNest& nest) const {
  DseResult result;
  result.stats.effective_min_dsp_util = options_.min_dsp_util;
  std::vector<DseCandidate> all = enumerate_phase1(nest, &result.stats);
  if (all.empty() && !result.stats.cancelled && options_.auto_relax_util &&
      options_.min_dsp_util > 0.0) {
    // The utilization floor excluded every feasible shape (tiny layer or
    // tight device); relax c_s and retry — the paper's phase 1 rerun knob.
    // A cancelled empty sweep must not enter this loop: "found nothing
    // before the deadline" is a timeout, not evidence that c_s is too
    // aggressive, and each retry re-sweeps the whole space.
    DseOptions relaxed = options_;
    while (all.empty() && !result.stats.cancelled &&
           relaxed.min_dsp_util > 1e-3) {
      relaxed.min_dsp_util /= 2.0;
      ++result.stats.util_relaxations;
      const DesignSpaceExplorer retry(device_, dtype_, relaxed);
      all = retry.enumerate_phase1(nest, &result.stats);
    }
    if (all.empty() && !result.stats.cancelled) {
      relaxed.min_dsp_util = 0.0;
      ++result.stats.util_relaxations;
      const DesignSpaceExplorer retry(device_, dtype_, relaxed);
      all = retry.enumerate_phase1(nest, &result.stats);
    }
    result.stats.effective_min_dsp_util = relaxed.min_dsp_util;
  }
  const std::size_t keep =
      std::min<std::size_t>(all.size(), static_cast<std::size_t>(options_.top_k));
  result.top.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(keep));

  double phase2_wall = 0.0;
  {
    obs::ScopedSpan phase2_span("dse.phase2", "dse");
    phase2_span.arg("candidates", static_cast<std::int64_t>(result.top.size()));
    run_phase2(nest, result.top);
    phase2_wall = phase2_span.elapsed_seconds();
  }
  result.stats.phase2_seconds += phase2_wall;
  // Phase 2 has no per-worker timers; its busy time is ~the wall time of the
  // sweep itself (the top-K list is short).
  result.stats.phase2_cpu_seconds += phase2_wall;

  // A deadline that expired during phase 2 is still a cancellation (some
  // realized numbers are missing); the deterministic item cut, by contrast,
  // only marks phase 1.
  if (options_.cancel.cancelled()) result.stats.cancelled = true;
  result.status =
      result.stats.cancelled ? DseStatus::kCancelled : DseStatus::kOk;

  if (obs::metrics_enabled()) {
    DseMetrics& m = DseMetrics::get();
    m.explorations.add(1);
    m.util_relaxations.add(result.stats.util_relaxations);
    m.phase2_ms.observe(phase2_wall * 1e3);
    if (result.status == DseStatus::kCancelled) m.cancelled.add(1);
  }
  return result;
}

DseResult DesignSpaceExplorer::explore_layer(const ConvLayerDesc& layer) const {
  return explore(build_conv_nest(layer));
}

}  // namespace sasynth
