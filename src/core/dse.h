// Two-phase design space exploration (paper §4, Fig. 5).
//
// Phase 1 (architectural): enumerate feasible mappings, prune PE array shapes
// by the DSP-utilization floor (Eq. 12, constant c_s), prune the data-reuse
// space to power-of-two middle bounds (valid because throughput is monotone
// non-decreasing in s and BRAM allocation rounds depths up to powers of two),
// then exhaustively search the remaining space with the analytical models at
// an assumed clock frequency. Phase 2 (hardware): run the top-K candidates
// through the pseudo-P&R frequency model and re-rank by realized throughput.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "core/perf_model.h"
#include "core/resource_model.h"
#include "core/sweep_memo.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "loopnest/loop_nest.h"
#include "nn/layer.h"
#include "util/deadline.h"

namespace sasynth {

struct DseOptions {
  /// Clock assumed during phase 1 (the paper uses 280 MHz for Fig. 7a).
  double assumed_freq_mhz = 280.0;

  /// c_s of Eq. 12: minimum DSP (MAC-capacity) utilization for a shape to
  /// survive the architectural prune.
  double min_dsp_util = 0.80;

  /// Restrict middle bounds to powers of two (§4's 17.5x prune). Disabling
  /// this gives the brute-force reuse search the paper compares against.
  bool pow2_middle = true;

  /// Candidates carried into phase 2 (the paper carries 14 into P&R).
  int top_k = 14;

  /// Shape enumeration caps.
  std::int64_t max_rows = 64;
  std::int64_t max_cols = 64;
  std::int64_t max_vec = 16;

  /// SIMD vector restricted to powers of two (DSP accumulation chain, §2.2).
  bool pow2_vec_only = true;

  /// Upper bound on BRAM utilization for a valid design.
  double max_bram_util = 1.0;

  /// Also reject designs whose estimated soft logic (LUT/FF) exceeds the
  /// device. The paper's Problem 2 bounds only DSP and BRAM because its
  /// designs never approached the ALM limit; on small parts the check
  /// matters.
  bool enforce_soft_logic = true;

  /// When phase 1 finds nothing at min_dsp_util (too aggressive a c_s for
  /// this layer/device), halve the floor and retry until a design appears or
  /// the floor reaches zero. Keeps the push-button flow push-button.
  bool auto_relax_util = true;

  /// Branch-and-bound pruning of the phase-1 sweep: work items whose
  /// compute-bound PT (Eq. 8, an admissible upper bound on every reuse
  /// strategy of the item — see phase1_pt_bound_gops) is strictly below a
  /// floor derived from a sequential seed pass over the top_k most
  /// promising items are skipped without running their reuse DFS. The
  /// final top_k candidates are bit-identical to the exhaustive sweep
  /// (docs/MODEL.md, "Dominance pruning"); only the tail of the full
  /// enumerate_phase1 dump shrinks. Disable for exhaustive-baseline
  /// measurements and full design-space dumps (Fig. 7a).
  bool bound_prune = true;

  /// Optional cross-request sweep memo (serve/sweep_cache.h). Like `cancel`
  /// and `jobs` this is execution policy, not request identity: a memo hit
  /// never changes a response byte (exact tier replays the identical DFS
  /// result; hint tier only tightens the branch-and-bound floor with
  /// achievable candidates, and only on tokens that cannot fire). Excluded
  /// from canonical_request_text(). Not owned; may be null.
  SweepMemo* sweep_memo = nullptr;

  /// Phase-1 work-item execution window [shard_begin, shard_end), in the
  /// deterministic item enumeration order (mappings in feasibility order,
  /// shapes in row/col/vec order). The full item list is always enumerated —
  /// indices are global and identical on every node — but only items inside
  /// the window are evaluated (seeded, pruned, or swept). shard_end == -1
  /// means "through the last item"; the default window covers everything,
  /// which is the single-node sweep. Like `jobs` this is execution policy
  /// for the sharding tier (serve/shard.h), not request identity: it never
  /// enters canonical_request_text(). The windowed candidate list is exactly
  /// the full sweep's candidate list restricted to the window, so a
  /// deterministic top-K merge of disjoint windows reproduces the
  /// single-node top-K bit for bit.
  std::int64_t shard_begin = 0;
  std::int64_t shard_end = -1;

  /// Worker threads for the phase-1 sweep and phase-2 re-ranking. 0 resolves
  /// through the SASYNTH_JOBS environment variable, then hardware
  /// concurrency; 1 forces the serial path. Results are bit-identical at any
  /// value (deterministic merge).
  int jobs = 0;

  /// Cooperative cancellation (util/deadline.h). The sweeps poll this token
  /// at work-item granularity; once it reports cancelled (explicit request,
  /// expired deadline, or a deterministic item cut) the exploration stops
  /// early and returns the best-so-far candidates with
  /// DseResult::status == DseStatus::kCancelled. The default token is inert
  /// (never cancels, zero polling cost beyond a relaxed load). Like `jobs`,
  /// the token is execution policy, not part of the request identity — it is
  /// excluded from canonical_request_text().
  CancelToken cancel;
};

/// Outcome of an exploration: kOk = the search space was fully swept;
/// kCancelled = the token fired mid-sweep and `top` holds only the
/// candidates evaluated before the cut (best-so-far, deterministically
/// merged — never a silent truncation).
enum class DseStatus { kOk, kCancelled };

/// One explored design with its phase-1 estimate and (after phase 2) its
/// realized clock and throughput.
struct DseCandidate {
  DesignPoint design;
  PerfEstimate estimate;        ///< at the assumed clock
  ResourceUsage resources;
  double realized_freq_mhz = 0.0;  ///< 0 until phase 2 runs
  PerfEstimate realized;           ///< at the realized clock

  double estimated_gops() const { return estimate.throughput_gops; }
  double realized_gops() const { return realized.throughput_gops; }
};

/// Search-space statistics (the quantities behind the paper's §4 claims).
/// This is the per-exploration view; each enumerate_phase1/explore call also
/// publishes its deltas into the process-global obs::MetricsRegistry (the
/// `dse_*` metrics of docs/OBSERVABILITY.md) and opens trace spans, so the
/// CLI, daemon, benches and tests all read one instrumentation source.
struct DseStats {
  std::int64_t mappings_candidates = 0;  ///< ordered loop triples examined
  std::int64_t mappings_feasible = 0;
  std::int64_t shapes_considered = 0;    ///< (mapping, t) within DSP capacity
  std::int64_t shapes_after_prune = 0;   ///< after Eq. 12
  std::int64_t reuse_evaluated = 0;      ///< s-vectors actually evaluated
  /// Reuse strategies whose leaf evaluation exceeded the BRAM budget.
  std::int64_t reuse_bram_rejected = 0;
  /// Phase-1 candidates dropped by the soft-logic (LUT/FF) fit check.
  std::int64_t soft_logic_rejected = 0;
  /// Size of the unpruned (all-integer s) reuse space for the surviving
  /// shapes — computed analytically, not enumerated.
  std::int64_t reuse_space_bruteforce = 0;
  /// Size of the pow2-restricted reuse space before BRAM pruning.
  std::int64_t reuse_space_pow2 = 0;
  /// (mapping, shape) work items dispatched to the phase-1 sweep.
  std::int64_t work_items = 0;
  /// Work items skipped by the branch-and-bound rule: their Eq. 8 bound
  /// fell strictly below the seeded top-K floor, so no reuse strategy of
  /// theirs could enter the top-K (new dominance rule; docs/MODEL.md).
  std::int64_t items_pruned_bound = 0;
  /// Work items fully evaluated by the sequential seed pass that
  /// establishes the branch-and-bound floor (the walk down the bound-sorted
  /// order stops once top_k items produced accepted candidates).
  std::int64_t bound_seed_evaluated = 0;
  /// Reuse-DFS subtrees skipped because the throughput of their maximal
  /// corner fell below the floor (valid only for stride-1 access structures,
  /// where MT is monotone non-decreasing in every middle bound;
  /// docs/MODEL.md, "Dominance pruning").
  std::int64_t reuse_subtrees_pruned = 0;
  /// Corner evaluations spent deciding subtree skips (the overhead side of
  /// `reuse_subtrees_pruned`; not part of `reuse_evaluated`).
  std::int64_t reuse_bound_evals = 0;
  /// Sweep-memo exact-tier hits: items answered from a previous sweep's
  /// DFS result instead of re-running it (0 without a sweep_memo).
  std::int64_t memo_exact_hits = 0;
  /// Sweep-memo hint-tier floor contributions accepted (0 without a memo).
  std::int64_t memo_hint_seeds = 0;
  /// auto_relax_util floor halvings taken before a design appeared.
  std::int64_t util_relaxations = 0;
  /// The c_s that actually produced the result (after any relaxation);
  /// negative until explore() runs.
  double effective_min_dsp_util = -1.0;
  /// True when the cancel token fired during the sweep: the counters above
  /// cover only the portion of the space visited before the cut.
  bool cancelled = false;
  /// Resolved worker count of the last explore (0 until a sweep runs).
  int jobs_used = 0;
  double phase1_seconds = 0.0;      ///< wall time
  double phase2_seconds = 0.0;      ///< wall time
  /// Summed per-worker busy time — phase1_cpu_seconds / phase1_seconds
  /// approximates the realized parallel speedup.
  double phase1_cpu_seconds = 0.0;
  double phase2_cpu_seconds = 0.0;

  std::string summary() const;
};

struct DseResult {
  /// Top candidates sorted by estimated throughput (desc), each with phase-2
  /// realized numbers filled in (candidates the cancel cut skipped in
  /// phase 2 keep realized_freq_mhz == 0; best() then falls back to the
  /// estimated ranking).
  std::vector<DseCandidate> top;
  DseStats stats;
  DseStatus status = DseStatus::kOk;

  /// Highest realized throughput (empty result if nothing valid was found).
  const DseCandidate* best() const;
  bool empty() const { return top.empty(); }
};

class DesignSpaceExplorer {
 public:
  DesignSpaceExplorer(FpgaDevice device, DataType dtype, DseOptions options);

  /// Full two-phase DSE for one loop nest (one layer, one group).
  DseResult explore(const LoopNest& nest) const;

  /// Convenience: builds the conv nest and explores it.
  DseResult explore_layer(const ConvLayerDesc& layer) const;

  /// Phase-1 only: all valid candidates (design + estimate) without the
  /// top-K cut; used by the Fig. 7(a) design-space dump. `per_shape_best`
  /// keeps only the best reuse strategy per (mapping, shape).
  std::vector<DseCandidate> enumerate_phase1(const LoopNest& nest,
                                             DseStats* stats) const;

  /// Size of the phase-1 (mapping, shape) work-item list for `nest` under
  /// these options — the quantity a shard coordinator partitions. Pure
  /// enumeration (feasible mappings × surviving shapes); no reuse DFS, no
  /// stats side effects. Deterministic, so every node that runs it against
  /// the same request computes the same item count and index order.
  std::int64_t count_phase1_items(const LoopNest& nest) const;

  /// Optimal middle bounds for a fixed (mapping, shape) — Problem 2 of §3.5.
  /// Returns false if no reuse strategy fits the BRAM budget.
  bool best_reuse_strategy(const LoopNest& nest, const SystolicMapping& mapping,
                           const ArrayShape& shape, DesignPoint* out,
                           DseStats* stats) const;

  /// Runs phase 2 on candidates (pseudo-P&R + re-estimate), in place.
  void run_phase2(const LoopNest& nest, std::vector<DseCandidate>& candidates)
      const;

  const FpgaDevice& device() const { return device_; }
  DataType dtype() const { return dtype_; }
  const DseOptions& options() const { return options_; }

 private:
  FpgaDevice device_;
  DataType dtype_;
  DseOptions options_;
};

/// Canonical text of everything the phase-1 reuse DFS reads for one sweep:
/// loop structure (trips included iff `include_trips`), access coefficient
/// matrices and per-access byte widths, the device's BRAM/bandwidth
/// parameters, and the sweep options the DFS consumes (assumed clock, pow2
/// restriction, BRAM ceiling — min_dsp_util is deliberately excluded: the
/// DFS never reads it, so auto-relax retries share entries). Two work items
/// with equal context and item texts are the same computation; the sweep
/// memo (core/sweep_memo.h) keys its exact tier on the trip-bearing form and
/// its hint tier on the trip-free form.
std::string sweep_context_text(const LoopNest& nest, const FpgaDevice& device,
                               DataType dtype, const DseOptions& options,
                               bool include_trips);

/// All PE-array shapes for `mapping` that pass the capacity and Eq. 12
/// utilization constraints. `considered` (optional) counts pre-prune shapes.
std::vector<ArrayShape> enumerate_shapes(const LoopNest& nest,
                                         const SystolicMapping& mapping,
                                         const FpgaDevice& device,
                                         DataType dtype,
                                         const DseOptions& options,
                                         std::int64_t* considered = nullptr);

}  // namespace sasynth
