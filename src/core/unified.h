// Cross-layer unified design selection (paper §5.3).
//
// Reprogramming the FPGA between layers is too expensive, so one systolic
// configuration (mapping, shape, reuse strategy) must serve every conv layer
// of the network. The selector maximizes aggregate throughput
// total_ops / sum_l (ops_l / T_l(design)) over the same pruned space the
// single-layer DSE uses, then picks the final design through the phase-2
// pseudo-P&R refinement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "core/dse.h"
#include "core/perf_model.h"
#include "core/resource_model.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "nn/network.h"

namespace sasynth {

struct UnifiedOptions {
  DseOptions dse;
  /// (mapping, shape) pairs shortlisted by the compute-bound score before the
  /// expensive unified reuse search runs on them.
  int shape_shortlist = 48;
  /// Worker threads for the shortlist scoring and per-entry unified reuse
  /// searches. 0 follows dse.jobs (which itself falls back to SASYNTH_JOBS /
  /// hardware concurrency). The selected design is identical at any value.
  int jobs = 0;
};

/// Per-layer outcome of a unified design.
struct LayerPerf {
  std::string layer;
  PerfEstimate perf;
  double latency_ms = 0.0;

  double throughput_gops() const { return perf.throughput_gops; }
  double eff() const { return perf.eff; }
};

struct UnifiedDesign {
  DesignPoint design;
  double realized_freq_mhz = 0.0;
  ResourceUsage resources;          ///< worst case across layers
  std::vector<LayerPerf> per_layer;
  double total_latency_ms = 0.0;    ///< one image through all conv layers
  double aggregate_gops = 0.0;      ///< total ops / total latency
  bool valid = false;
  /// True when options.dse.cancel fired mid-selection: the result (possibly
  /// still valid) came from the portion of the space visited before the cut.
  bool cancelled = false;

  std::string summary(const Network& net) const;
};

/// Synthetic nest whose per-position trip counts are the maxima over all
/// input nests — the envelope the unified selection searches over. Exposed
/// for src/deploy and the serve fleet-cache path, which validates cached
/// fleet designs against the workload envelope.
LoopNest unified_envelope_nest(const std::vector<LoopNest>& nests);

/// One stage-2 survivor of the unified search: a fully specified design with
/// its aggregate estimate at the assumed clock. The fleet optimizer
/// (src/deploy/fleet.cpp) consumes these as its candidate pool.
struct UnifiedCandidate {
  DesignPoint design;
  double est_gops = 0.0;  ///< aggregate Gops at dse.assumed_freq_mhz
  double dram_traffic_bytes = 0.0;
  std::int64_t max_bram = 0;
};

/// Stages 1+2 of select_unified_design: shortlist (mapping, shape) pairs by
/// the compute-bound score, search the unified reuse strategy for each
/// shortlisted pair, and return the survivors sorted best-first (est_gops
/// desc, max_bram asc tie-break). Deterministic at any jobs count.
/// `cancelled` (may be null) reports whether options.dse.cancel cut the
/// enumeration early; the returned prefix is still deterministic.
std::vector<UnifiedCandidate> enumerate_unified_candidates(
    const Network& net, const FpgaDevice& device, DataType dtype,
    const UnifiedOptions& options = {}, bool* cancelled = nullptr);

/// Evaluates a given design on every layer of the network at `freq_mhz`
/// (the evaluation half of the selector; also used to score the paper's
/// published configurations in the benches).
UnifiedDesign evaluate_unified_design(const Network& net,
                                      const DesignPoint& design,
                                      const FpgaDevice& device, DataType dtype,
                                      double freq_mhz);

/// Full selection: shortlist (mapping, shape) pairs, search the unified reuse
/// strategy for each, carry the top-K through pseudo-P&R, return the design
/// with the best realized aggregate throughput. `valid == false` when the
/// network/space admits no design.
UnifiedDesign select_unified_design(const Network& net,
                                    const FpgaDevice& device, DataType dtype,
                                    const UnifiedOptions& options = {});

}  // namespace sasynth
