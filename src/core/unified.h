// Cross-layer unified design selection (paper §5.3).
//
// Reprogramming the FPGA between layers is too expensive, so one systolic
// configuration (mapping, shape, reuse strategy) must serve every conv layer
// of the network. The selector maximizes aggregate throughput
// total_ops / sum_l (ops_l / T_l(design)) over the same pruned space the
// single-layer DSE uses, then picks the final design through the phase-2
// pseudo-P&R refinement.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "core/dse.h"
#include "core/perf_model.h"
#include "core/resource_model.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "nn/network.h"

namespace sasynth {

struct UnifiedOptions {
  DseOptions dse;
  /// (mapping, shape) pairs shortlisted by the compute-bound score before the
  /// expensive unified reuse search runs on them.
  int shape_shortlist = 48;
  /// Worker threads for the shortlist scoring and per-entry unified reuse
  /// searches. 0 follows dse.jobs (which itself falls back to SASYNTH_JOBS /
  /// hardware concurrency). The selected design is identical at any value.
  int jobs = 0;
};

/// Per-layer outcome of a unified design.
struct LayerPerf {
  std::string layer;
  PerfEstimate perf;
  double latency_ms = 0.0;

  double throughput_gops() const { return perf.throughput_gops; }
  double eff() const { return perf.eff; }
};

struct UnifiedDesign {
  DesignPoint design;
  double realized_freq_mhz = 0.0;
  ResourceUsage resources;          ///< worst case across layers
  std::vector<LayerPerf> per_layer;
  double total_latency_ms = 0.0;    ///< one image through all conv layers
  double aggregate_gops = 0.0;      ///< total ops / total latency
  bool valid = false;
  /// True when options.dse.cancel fired mid-selection: the result (possibly
  /// still valid) came from the portion of the space visited before the cut.
  bool cancelled = false;

  std::string summary(const Network& net) const;
};

/// Evaluates a given design on every layer of the network at `freq_mhz`
/// (the evaluation half of the selector; also used to score the paper's
/// published configurations in the benches).
UnifiedDesign evaluate_unified_design(const Network& net,
                                      const DesignPoint& design,
                                      const FpgaDevice& device, DataType dtype,
                                      double freq_mhz);

/// Full selection: shortlist (mapping, shape) pairs, search the unified reuse
/// strategy for each, carry the top-K through pseudo-P&R, return the design
/// with the best realized aggregate throughput. `valid == false` when the
/// network/space admits no design.
UnifiedDesign select_unified_design(const Network& net,
                                    const FpgaDevice& device, DataType dtype,
                                    const UnifiedOptions& options = {});

}  // namespace sasynth
