// SoA kernel for the phase-1 bound pass. Kept in its own translation unit
// so the build can check (scripts/check_vectorization.sh) that this loop
// vectorizes at the CI optimization level — a silent regression to scalar
// code would erase the batching win without failing any test.
#include "core/lean_batch.h"

#if defined(__GNUC__) || defined(__clang__)
#define SASYNTH_RESTRICT __restrict__
#else
#define SASYNTH_RESTRICT
#endif

namespace sasynth {

void batch_pt_bounds(const double* SASYNTH_RESTRICT executed,
                     const double* SASYNTH_RESTRICT lanes, double total_iters,
                     double freq_ghz, double* SASYNTH_RESTRICT pt_gops,
                     std::size_t n) {
  // Division and multiplication only: element-wise IEEE results are
  // identical to the scalar expression, so vectorization cannot change a
  // single bit of any bound.
  for (std::size_t i = 0; i < n; ++i) {
    pt_gops[i] = ((total_iters / executed[i]) * lanes[i]) * 2.0 * freq_ghz;
  }
}

void batch_pt_bounds(ShapeBatch& batch, double total_iters, double freq_ghz) {
  batch_pt_bounds(batch.executed.data(), batch.lanes.data(), total_iters,
                  freq_ghz, batch.pt_gops.data(), batch.size());
}

}  // namespace sasynth
