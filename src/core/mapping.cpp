#include "core/mapping.h"

#include <cassert>

#include "util/strings.h"

namespace sasynth {

std::string SystolicMapping::to_string(const LoopNest& nest) const {
  return strformat("(row=%s, col=%s, vec=%s)",
                   nest.loop(row_loop).name.c_str(),
                   nest.loop(col_loop).name.c_str(),
                   nest.loop(vec_loop).name.c_str());
}

std::string SystolicMapping::signature() const {
  return strformat("m%zu_%zu_%zu", row_loop, col_loop, vec_loop);
}

bool SystolicMapping::operator==(const SystolicMapping& other) const {
  return row_loop == other.row_loop && col_loop == other.col_loop &&
         vec_loop == other.vec_loop;
}

namespace {

bool loops_distinct(const SystolicMapping& m) {
  return m.row_loop != m.col_loop && m.row_loop != m.vec_loop &&
         m.col_loop != m.vec_loop;
}

/// Indices of the read accesses and the reduce access in the nest.
struct AccessRoles {
  std::size_t reduce = LoopNest::npos;
  std::vector<std::size_t> reads;
};

AccessRoles classify_accesses(const LoopNest& nest) {
  AccessRoles roles;
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    if (nest.accesses()[a].role == AccessRole::kReduce) roles.reduce = a;
    else roles.reads.push_back(a);
  }
  return roles;
}

}  // namespace

bool satisfies_reuse_condition(const LoopNest& nest, const ReuseMatrix& reuse,
                               const SystolicMapping& mapping) {
  if (!loops_distinct(mapping)) return false;
  if (mapping.row_loop >= nest.num_loops() ||
      mapping.col_loop >= nest.num_loops() ||
      mapping.vec_loop >= nest.num_loops()) {
    return false;
  }
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    const bool covered = reuse.carries_reuse(a, mapping.row_loop) ||
                         reuse.carries_reuse(a, mapping.col_loop) ||
                         reuse.carries_reuse(a, mapping.vec_loop);
    if (!covered) return false;
  }
  return true;
}

bool is_feasible_mapping(const LoopNest& nest, const ReuseMatrix& reuse,
                         const SystolicMapping& mapping, std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (!loops_distinct(mapping)) return fail("mapped loops must be distinct");
  if (mapping.row_loop >= nest.num_loops() ||
      mapping.col_loop >= nest.num_loops() ||
      mapping.vec_loop >= nest.num_loops()) {
    return fail("mapped loop index out of range");
  }

  const AccessRoles roles = classify_accesses(nest);
  assert(roles.reduce != LoopNest::npos);
  if (roles.reads.size() != 2) {
    return fail("systolic mapping requires exactly two operand arrays");
  }

  // SIMD lanes combine partial sums through the accumulation chain, so the
  // vec loop must carry the reduction array's reuse (every lane writes the
  // same output element).
  if (!reuse.carries_reuse(roles.reduce, mapping.vec_loop)) {
    return fail("vec loop does not carry reuse of the reduction array");
  }

  // The array shifted vertically (down PE rows) is shared by all PEs of a
  // column, so the row loop must carry its reuse; symmetrically for the
  // horizontally shifted array and the col loop. Either operand may take
  // either direction.
  const std::size_t a0 = roles.reads[0];
  const std::size_t a1 = roles.reads[1];
  const bool orient0 = reuse.carries_reuse(a0, mapping.row_loop) &&
                       reuse.carries_reuse(a1, mapping.col_loop);
  const bool orient1 = reuse.carries_reuse(a1, mapping.row_loop) &&
                       reuse.carries_reuse(a0, mapping.col_loop);
  if (!orient0 && !orient1) {
    return fail(
        "row/col loops do not carry the reuse of the two shifted operand "
        "arrays");
  }
  if (why != nullptr) why->clear();
  return true;
}

std::vector<SystolicMapping> enumerate_reuse_condition_mappings(
    const LoopNest& nest, const ReuseMatrix& reuse) {
  std::vector<SystolicMapping> out;
  const std::size_t n = nest.num_loops();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t v = 0; v < n; ++v) {
        const SystolicMapping m{r, c, v};
        if (satisfies_reuse_condition(nest, reuse, m)) out.push_back(m);
      }
    }
  }
  return out;
}

std::vector<SystolicMapping> enumerate_feasible_mappings(
    const LoopNest& nest, const ReuseMatrix& reuse) {
  std::vector<SystolicMapping> out;
  const std::size_t n = nest.num_loops();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      for (std::size_t v = 0; v < n; ++v) {
        const SystolicMapping m{r, c, v};
        if (is_feasible_mapping(nest, reuse, m)) out.push_back(m);
      }
    }
  }
  return out;
}

std::int64_t num_candidate_mappings(const LoopNest& nest) {
  const auto n = static_cast<std::int64_t>(nest.num_loops());
  if (n < 3) return 0;
  return n * (n - 1) * (n - 2);
}

}  // namespace sasynth
