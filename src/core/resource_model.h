// Resource utilization model: Eqs. 4-6 of the paper.
//
//   D(t)    = DSP_per_PE * prod(t)                       (Eq. 4)
//   DA_r    = |{ a | a = F_r(i), i in D_{s,t} }|          (Eq. 5)
//   B(s,t)  = sum_r (c_b + pow2_roundup(DA_r) blocks)     (Eq. 6)
//             + c_p * prod(t)
//
// Footprints use the closed-form per-dimension range product (§3.3); buffer
// depths are rounded up to powers of two because that is how the OpenCL flow
// allocates memories; buffers are doubled for the double-buffering pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "fpga/synth.h"
#include "loopnest/loop_nest.h"

namespace sasynth {

/// Bytes used to store one element of the named array under `dtype`.
/// Weights use the weight width, the reduction array and pixels use the
/// pixel width (layer outputs feed the next layer's pixel port).
double bytes_per_element(DataType dtype, const LoopNest& nest,
                         std::size_t access_index);

/// Per-array reuse-buffer accounting.
struct BufferUsage {
  std::string array;
  std::int64_t footprint_elems = 0;  ///< DA_r, Eq. 5
  std::int64_t depth_pow2 = 0;       ///< pow2_roundup(DA_r)
  double bytes = 0.0;                ///< 2 * depth * elem bytes (double buffer)
  std::int64_t bram_blocks = 0;      ///< ceil(bytes / block) + c_b
};

struct ResourceUsage {
  std::int64_t lanes = 0;          ///< prod(t), the MAC count of Eq. 4
  std::int64_t dsp_blocks = 0;
  std::vector<BufferUsage> buffers;
  std::int64_t bram_blocks = 0;    ///< B(s,t), Eq. 6
  ResourceReport report;           ///< full synthesis-style report

  std::string summary() const;
};

/// Evaluates the full resource model for a design point.
ResourceUsage model_resources(const LoopNest& nest, const DesignPoint& design,
                              const FpgaDevice& device, DataType dtype);

/// Just B(s,t) (Eq. 6) — the hot path of the DSE inner loop.
std::int64_t bram_usage_blocks(const LoopNest& nest, const DesignPoint& design,
                               const FpgaDevice& device, DataType dtype);

/// Banked variant of Eq. 6: in hardware every buffer is distributed so each
/// PE column (IB/OB) or row (WB) has its own bank delivering `vec` elements
/// per cycle, and *each bank's* depth rounds up to a power of two. More
/// faithful than the paper's monolithic formula and never smaller; exposed
/// for the BRAM-model ablation (the DSE uses the paper's Eq. 6).
std::int64_t bram_usage_blocks_banked(const LoopNest& nest,
                                      const DesignPoint& design,
                                      const FpgaDevice& device,
                                      DataType dtype);

}  // namespace sasynth
