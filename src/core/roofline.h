// Roofline analysis of systolic designs.
//
// The paper positions its model against roofline-based DSE ([6], Zhang et
// al. FPGA'15): a design's attainable throughput is
//   min(peak_compute, operational_intensity * bandwidth).
// This module computes the roofline coordinates of a design point — its
// operational intensity (effective ops per DRAM byte, a function of the
// reuse strategy) and the two roofs — so the ablation benches can show where
// each reuse strategy sits and where the compute/memory crossover falls.
// It is exactly Eqs. 7-10 re-expressed in roofline form; tests assert the
// equivalence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/design_point.h"
#include "fpga/datatype.h"
#include "fpga/device.h"
#include "loopnest/loop_nest.h"

namespace sasynth {

struct RooflinePoint {
  /// Effective operations per byte moved to/from DRAM (per block; identical
  /// in steady state).
  double operational_intensity = 0.0;
  /// Compute roof at the given clock: Eff * lanes * 2 * F (Gops).
  double compute_roof_gops = 0.0;
  /// Memory roof: intensity * BW_total (Gops).
  double memory_roof_gops = 0.0;
  /// min of the roofs — equals Eq. 7's T up to the per-port refinement.
  double attainable_gops = 0.0;
  /// Intensity at which the roofs cross for this design's compute roof.
  double ridge_intensity = 0.0;
  bool memory_bound = false;

  std::string summary() const;
};

RooflinePoint roofline_point(const LoopNest& nest, const DesignPoint& design,
                             const FpgaDevice& device, DataType dtype,
                             double freq_mhz);

/// Intensity/throughput samples for a bandwidth sweep of one design: the
/// crossover bandwidth below which the design turns memory-bound.
struct BandwidthSweepSample {
  double bandwidth_gbs = 0.0;
  double throughput_gops = 0.0;
  bool memory_bound = false;
};

std::vector<BandwidthSweepSample> sweep_bandwidth(
    const LoopNest& nest, const DesignPoint& design, const FpgaDevice& device,
    DataType dtype, double freq_mhz, const std::vector<double>& bandwidths);

}  // namespace sasynth
