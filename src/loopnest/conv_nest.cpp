#include "loopnest/conv_nest.h"

#include <cassert>

namespace sasynth {

const char* ConvLoops::name(std::size_t loop) {
  switch (loop) {
    case kO: return "o";
    case kI: return "i";
    case kC: return "c";
    case kR: return "r";
    case kP: return "p";
    case kQ: return "q";
    default: assert(false); return "?";
  }
}

LoopNest build_conv_nest(const ConvLayerDesc& layer) {
  assert(layer.validate().empty());
  LoopNest nest;
  nest.add_loop("o", layer.out_maps);   // L1
  nest.add_loop("i", layer.in_maps);    // L2
  nest.add_loop("c", layer.out_cols);   // L3
  nest.add_loop("r", layer.out_rows);   // L4
  nest.add_loop("p", layer.kernel);     // L5
  nest.add_loop("q", layer.kernel);     // L6
  constexpr std::size_t n = ConvLoops::kCount;

  // OUT[o][r][c] (reduction target)
  AccessFunction out;
  out.array = kOutArray;
  out.indices.push_back(AffineExpr::term(n, ConvLoops::kO));
  out.indices.push_back(AffineExpr::term(n, ConvLoops::kR));
  out.indices.push_back(AffineExpr::term(n, ConvLoops::kC));
  nest.add_access(ArrayAccess{std::move(out), AccessRole::kReduce});

  // W[o][i][p][q]
  AccessFunction w;
  w.array = kWeightArray;
  w.indices.push_back(AffineExpr::term(n, ConvLoops::kO));
  w.indices.push_back(AffineExpr::term(n, ConvLoops::kI));
  w.indices.push_back(AffineExpr::term(n, ConvLoops::kP));
  w.indices.push_back(AffineExpr::term(n, ConvLoops::kQ));
  nest.add_access(ArrayAccess{std::move(w), AccessRole::kRead});

  // IN[i][stride*r + p][stride*c + q]
  AccessFunction in;
  in.array = kInArray;
  in.indices.push_back(AffineExpr::term(n, ConvLoops::kI));
  AffineExpr row(n);
  row.set_coeff(ConvLoops::kR, layer.stride).add_term(ConvLoops::kP, 1);
  in.indices.push_back(row);
  AffineExpr col(n);
  col.set_coeff(ConvLoops::kC, layer.stride).add_term(ConvLoops::kQ, 1);
  in.indices.push_back(col);
  nest.add_access(ArrayAccess{std::move(in), AccessRole::kRead});

  assert(nest.validate().empty());
  return nest;
}

}  // namespace sasynth
