// Fine-grained data-reuse analysis (paper §3.2, Eq. 3).
//
// An array r has fine-grained reuse carried by loop l when consecutive
// iterations of l access the same element: F_r(..., i_l, ...) ==
// F_r(..., i_l + 1, ...) for every point of the domain. For affine accesses
// this is exactly coefficient-of-l == 0 in every array dimension. The result
// is the binary matrix c_rl the feasible-mapping condition (Eq. 2) is built
// from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loopnest/loop_nest.h"

namespace sasynth {

/// c_rl for a loop nest: reuse_[access][loop].
class ReuseMatrix {
 public:
  ReuseMatrix() = default;
  ReuseMatrix(std::size_t num_accesses, std::size_t num_loops);

  bool carries_reuse(std::size_t access, std::size_t loop) const;
  void set(std::size_t access, std::size_t loop, bool value);

  std::size_t num_accesses() const { return rows_.size(); }
  std::size_t num_loops() const {
    return rows_.empty() ? 0 : rows_.front().size();
  }

  /// Loops carrying reuse of the given access.
  std::vector<std::size_t> reuse_loops(std::size_t access) const;

  /// Accesses whose reuse is carried by the given loop.
  std::vector<std::size_t> reused_accesses(std::size_t loop) const;

 private:
  std::vector<std::vector<bool>> rows_;
};

/// Computes c_rl by access-function invariance (closed form for affine
/// accesses).
ReuseMatrix analyze_reuse(const LoopNest& nest);

/// Brute-force verification of Eq. 3 by enumerating the domain and comparing
/// F_r at i_l and i_l + 1. Used in tests to validate `analyze_reuse` on small
/// nests. O(domain size) per (access, loop).
ReuseMatrix analyze_reuse_exhaustive(const LoopNest& nest);

/// Human-readable c_rl table.
std::string reuse_report(const LoopNest& nest, const ReuseMatrix& matrix);

}  // namespace sasynth
