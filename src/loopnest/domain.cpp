#include "loopnest/domain.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace sasynth {

RectDomain::RectDomain(std::vector<std::int64_t> extents)
    : extents_(std::move(extents)) {
  for (const std::int64_t e : extents_) {
    assert(e >= 1);
    (void)e;
  }
}

std::int64_t RectDomain::extent(std::size_t axis) const {
  assert(axis < extents_.size());
  return extents_[axis];
}

std::int64_t RectDomain::size() const {
  std::int64_t total = 1;
  for (const std::int64_t e : extents_) total *= e;
  return total;
}

void RectDomain::for_each(
    const std::function<void(const std::vector<std::int64_t>&)>& fn) const {
  std::vector<std::int64_t> point(extents_.size(), 0);
  if (extents_.empty()) {
    fn(point);
    return;
  }
  while (true) {
    fn(point);
    // Odometer increment, last axis fastest.
    std::size_t axis = extents_.size();
    while (axis-- > 0) {
      if (++point[axis] < extents_[axis]) break;
      point[axis] = 0;
      if (axis == 0) return;
    }
  }
}

std::int64_t exact_footprint(const AccessFunction& access,
                             const RectDomain& domain) {
  std::set<std::vector<std::int64_t>> addresses;
  domain.for_each([&](const std::vector<std::int64_t>& point) {
    addresses.insert(access.eval(point));
  });
  return static_cast<std::int64_t>(addresses.size());
}

std::int64_t dim_range_size(const AffineExpr& expr, const RectDomain& domain) {
  assert(expr.num_loops() == domain.rank());
  std::int64_t lo = expr.constant();
  std::int64_t hi = expr.constant();
  for (std::size_t l = 0; l < domain.rank(); ++l) {
    const std::int64_t c = expr.coeff(l);
    const std::int64_t span = c * (domain.extent(l) - 1);
    if (span >= 0) hi += span;
    else lo += span;
  }
  return hi - lo + 1;
}

std::int64_t closed_form_footprint(const AccessFunction& access,
                                   const RectDomain& domain) {
  std::int64_t total = 1;
  for (const AffineExpr& expr : access.indices) {
    total *= dim_range_size(expr, domain);
  }
  return total;
}

}  // namespace sasynth
