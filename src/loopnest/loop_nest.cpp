#include "loopnest/loop_nest.h"

#include <cassert>

#include "util/strings.h"

namespace sasynth {

std::size_t LoopNest::add_loop(std::string name, std::int64_t trip) {
  loops_.push_back(Loop{std::move(name), trip});
  return loops_.size() - 1;
}

void LoopNest::add_access(ArrayAccess access) {
  accesses_.push_back(std::move(access));
}

const Loop& LoopNest::loop(std::size_t l) const {
  assert(l < loops_.size());
  return loops_[l];
}

std::size_t LoopNest::find_loop(const std::string& name) const {
  for (std::size_t l = 0; l < loops_.size(); ++l) {
    if (loops_[l].name == name) return l;
  }
  return npos;
}

std::size_t LoopNest::find_access(const std::string& array) const {
  for (std::size_t a = 0; a < accesses_.size(); ++a) {
    if (accesses_[a].access.array == array) return a;
  }
  return npos;
}

std::vector<std::int64_t> LoopNest::trip_counts() const {
  std::vector<std::int64_t> trips;
  trips.reserve(loops_.size());
  for (const Loop& l : loops_) trips.push_back(l.trip);
  return trips;
}

std::int64_t LoopNest::total_iterations() const {
  std::int64_t total = 1;
  for (const Loop& l : loops_) total *= l.trip;
  return total;
}

std::vector<std::string> LoopNest::iter_names() const {
  std::vector<std::string> names;
  names.reserve(loops_.size());
  for (const Loop& l : loops_) names.push_back(l.name);
  return names;
}

std::string LoopNest::validate() const {
  if (loops_.empty()) return "loop nest has no loops";
  for (const Loop& l : loops_) {
    if (l.trip < 1) return "loop '" + l.name + "' has non-positive trip count";
    if (l.name.empty()) return "loop with empty name";
  }
  if (accesses_.empty()) return "loop nest has no array accesses";
  std::size_t reduce_count = 0;
  for (const ArrayAccess& a : accesses_) {
    if (a.access.indices.empty()) {
      return "access to '" + a.access.array + "' has rank 0";
    }
    for (const AffineExpr& e : a.access.indices) {
      if (e.num_loops() != loops_.size()) {
        return "access to '" + a.access.array +
               "' built for a different loop count";
      }
    }
    if (a.role == AccessRole::kReduce) ++reduce_count;
  }
  if (reduce_count != 1) return "loop nest must have exactly one reduction access";
  return "";
}

std::string LoopNest::to_string() const {
  const std::vector<std::string> names = iter_names();
  std::string out;
  for (std::size_t l = 0; l < loops_.size(); ++l) {
    out += std::string(2 * l, ' ') +
           strformat("for (%s = 0; %s < %lld; %s++)\n", loops_[l].name.c_str(),
                     loops_[l].name.c_str(),
                     static_cast<long long>(loops_[l].trip),
                     loops_[l].name.c_str());
  }
  std::string stmt;
  std::string reduce;
  std::vector<std::string> reads;
  for (const ArrayAccess& a : accesses_) {
    if (a.role == AccessRole::kReduce) reduce = a.access.to_string(names);
    else reads.push_back(a.access.to_string(names));
  }
  stmt = reduce + " += " + join(reads, " * ") + ";";
  out += std::string(2 * loops_.size(), ' ') + stmt + "\n";
  return out;
}

}  // namespace sasynth
