#include "loopnest/reuse.h"

#include <cassert>

#include "loopnest/domain.h"
#include "util/strings.h"

namespace sasynth {

ReuseMatrix::ReuseMatrix(std::size_t num_accesses, std::size_t num_loops)
    : rows_(num_accesses, std::vector<bool>(num_loops, false)) {}

bool ReuseMatrix::carries_reuse(std::size_t access, std::size_t loop) const {
  assert(access < rows_.size());
  assert(loop < rows_[access].size());
  return rows_[access][loop];
}

void ReuseMatrix::set(std::size_t access, std::size_t loop, bool value) {
  assert(access < rows_.size());
  assert(loop < rows_[access].size());
  rows_[access][loop] = value;
}

std::vector<std::size_t> ReuseMatrix::reuse_loops(std::size_t access) const {
  std::vector<std::size_t> loops;
  for (std::size_t l = 0; l < num_loops(); ++l) {
    if (carries_reuse(access, l)) loops.push_back(l);
  }
  return loops;
}

std::vector<std::size_t> ReuseMatrix::reused_accesses(std::size_t loop) const {
  std::vector<std::size_t> accesses;
  for (std::size_t a = 0; a < num_accesses(); ++a) {
    if (carries_reuse(a, loop)) accesses.push_back(a);
  }
  return accesses;
}

ReuseMatrix analyze_reuse(const LoopNest& nest) {
  ReuseMatrix matrix(nest.num_accesses(), nest.num_loops());
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    for (std::size_t l = 0; l < nest.num_loops(); ++l) {
      matrix.set(a, l, nest.accesses()[a].access.invariant_in(l));
    }
  }
  return matrix;
}

ReuseMatrix analyze_reuse_exhaustive(const LoopNest& nest) {
  ReuseMatrix matrix(nest.num_accesses(), nest.num_loops());
  const RectDomain domain(nest.trip_counts());
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    const AccessFunction& f = nest.accesses()[a].access;
    for (std::size_t l = 0; l < nest.num_loops(); ++l) {
      // Eq. 3: equal addresses at i_l and i_l + 1 for all domain points where
      // both are defined. Trip-1 loops carry reuse trivially (the condition
      // is vacuous and the access is invariant across the loop).
      bool reuse = true;
      domain.for_each([&](const std::vector<std::int64_t>& point) {
        if (!reuse) return;
        if (point[l] + 1 >= nest.loop(l).trip) return;
        std::vector<std::int64_t> next = point;
        ++next[l];
        if (f.eval(point) != f.eval(next)) reuse = false;
      });
      matrix.set(a, l, reuse);
    }
  }
  return matrix;
}

std::string reuse_report(const LoopNest& nest, const ReuseMatrix& matrix) {
  const std::vector<std::string> names = nest.iter_names();
  std::string out = "array";
  for (const std::string& n : names) out += "\t" + n;
  out += "\n";
  for (std::size_t a = 0; a < nest.num_accesses(); ++a) {
    out += nest.accesses()[a].access.array;
    for (std::size_t l = 0; l < nest.num_loops(); ++l) {
      out += matrix.carries_reuse(a, l) ? "\t1" : "\t0";
    }
    out += "\n";
  }
  return out;
}

}  // namespace sasynth
