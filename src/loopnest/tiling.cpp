#include "loopnest/tiling.h"

#include <cassert>

#include "util/math_util.h"
#include "util/strings.h"

namespace sasynth {

TilingSpec::TilingSpec(std::size_t num_loops)
    : middle_(num_loops, 1), inner_(num_loops, 1) {}

TilingSpec::TilingSpec(std::vector<std::int64_t> middle,
                       std::vector<std::int64_t> inner)
    : middle_(std::move(middle)), inner_(std::move(inner)) {
  assert(middle_.size() == inner_.size());
}

std::int64_t TilingSpec::middle(std::size_t l) const {
  assert(l < middle_.size());
  return middle_[l];
}

std::int64_t TilingSpec::inner(std::size_t l) const {
  assert(l < inner_.size());
  return inner_[l];
}

TilingSpec& TilingSpec::set_middle(std::size_t l, std::int64_t s) {
  assert(l < middle_.size());
  middle_[l] = s;
  return *this;
}

TilingSpec& TilingSpec::set_inner(std::size_t l, std::int64_t t) {
  assert(l < inner_.size());
  inner_[l] = t;
  return *this;
}

std::int64_t TilingSpec::block_trip(std::size_t l) const {
  return middle(l) * inner(l);
}

std::vector<std::int64_t> TilingSpec::block_trips() const {
  std::vector<std::int64_t> trips(middle_.size());
  for (std::size_t l = 0; l < middle_.size(); ++l) trips[l] = block_trip(l);
  return trips;
}

std::int64_t TilingSpec::outer_trip(const LoopNest& nest, std::size_t l) const {
  return ceil_div(nest.loop(l).trip, block_trip(l));
}

std::int64_t TilingSpec::num_blocks(const LoopNest& nest) const {
  std::int64_t total = 1;
  for (std::size_t l = 0; l < num_loops(); ++l) total *= outer_trip(nest, l);
  return total;
}

std::int64_t TilingSpec::granules(const LoopNest& nest, std::size_t l) const {
  return ceil_div(nest.loop(l).trip, inner(l));
}

std::int64_t TilingSpec::total_wavefronts(const LoopNest& nest) const {
  std::int64_t total = 1;
  for (std::size_t l = 0; l < num_loops(); ++l) total *= granules(nest, l);
  return total;
}

std::int64_t TilingSpec::executed_iterations(const LoopNest& nest) const {
  std::int64_t total = 1;
  for (std::size_t l = 0; l < num_loops(); ++l) {
    total *= granules(nest, l) * inner(l);
  }
  return total;
}

double TilingSpec::efficiency(const LoopNest& nest) const {
  return static_cast<double>(nest.total_iterations()) /
         static_cast<double>(executed_iterations(nest));
}

std::int64_t TilingSpec::macs_per_block() const {
  std::int64_t total = 1;
  for (std::size_t l = 0; l < num_loops(); ++l) total *= block_trip(l);
  return total;
}

std::int64_t TilingSpec::cycles_per_block() const {
  std::int64_t total = 1;
  for (const std::int64_t s : middle_) total *= s;
  return total;
}

RectDomain TilingSpec::block_domain() const { return RectDomain(block_trips()); }

std::int64_t TilingSpec::footprint_elems(const AccessFunction& access) const {
  return closed_form_footprint(access, block_domain());
}

std::string TilingSpec::validate(const LoopNest& nest) const {
  if (num_loops() != nest.num_loops()) {
    return "tiling spec loop count does not match nest";
  }
  for (std::size_t l = 0; l < num_loops(); ++l) {
    if (middle_[l] < 1) return "middle bound must be >= 1";
    if (inner_[l] < 1) return "inner bound must be >= 1";
    if (block_trip(l) > round_up_pow2(nest.loop(l).trip) * 2) {
      // A block larger than ~2x the trip count is pure waste; flag it as a
      // configuration error rather than letting Eff silently crater.
      return "block trip of loop '" + nest.loop(l).name +
             "' exceeds twice the padded trip count";
    }
  }
  return "";
}

std::string TilingSpec::validate_structure(const LoopNest& nest) const {
  if (num_loops() != nest.num_loops()) {
    return "tiling spec loop count does not match nest";
  }
  for (std::size_t l = 0; l < num_loops(); ++l) {
    if (middle_[l] < 1) return "middle bound must be >= 1";
    if (inner_[l] < 1) return "inner bound must be >= 1";
  }
  return "";
}

std::string TilingSpec::to_string() const {
  std::vector<std::string> s_str;
  std::vector<std::string> t_str;
  for (std::size_t l = 0; l < num_loops(); ++l) {
    s_str.push_back(std::to_string(middle_[l]));
    t_str.push_back(std::to_string(inner_[l]));
  }
  return "s=(" + join(s_str, ",") + ") t=(" + join(t_str, ",") + ")";
}

bool TilingSpec::operator==(const TilingSpec& other) const {
  return middle_ == other.middle_ && inner_ == other.inner_;
}

}  // namespace sasynth
