// Loop-nest intermediate representation (the program form of paper Fig. 4
// before tiling): a perfect nest of counted loops around one multiply-
// accumulate statement with affine array accesses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loopnest/affine.h"

namespace sasynth {

/// One counted loop: `for (name = 0; name < trip; ++name)`.
struct Loop {
  std::string name;
  std::int64_t trip = 0;
};

/// How the statement uses an array.
enum class AccessRole {
  kRead,       ///< operand (W, IN)
  kReduce,     ///< read-modify-write accumulation target (OUT)
};

struct ArrayAccess {
  AccessFunction access;
  AccessRole role = AccessRole::kRead;
};

/// A perfect loop nest around a single MAC-style statement:
///   reduce_array[...] += read_array0[...] * read_array1[...].
class LoopNest {
 public:
  LoopNest() = default;

  /// Appends a loop; returns its index.
  std::size_t add_loop(std::string name, std::int64_t trip);

  /// Registers an array access of the statement.
  void add_access(ArrayAccess access);

  std::size_t num_loops() const { return loops_.size(); }
  const Loop& loop(std::size_t l) const;
  const std::vector<Loop>& loops() const { return loops_; }

  /// Index of the loop with the given name, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_loop(const std::string& name) const;

  const std::vector<ArrayAccess>& accesses() const { return accesses_; }
  std::size_t num_accesses() const { return accesses_.size(); }

  /// Index of the access for the given array name, or npos.
  std::size_t find_access(const std::string& array) const;

  /// Trip counts as a vector (one per loop).
  std::vector<std::int64_t> trip_counts() const;

  /// Total iteration count (product of trips).
  std::int64_t total_iterations() const;

  /// Iterator names (one per loop), used for rendering.
  std::vector<std::string> iter_names() const;

  /// Validates the nest: positive trips, access ranks consistent with the
  /// number of loops, exactly one kReduce access. Returns "" when valid.
  std::string validate() const;

  /// Multi-line rendering of the nest as C-like pseudocode.
  std::string to_string() const;

 private:
  std::vector<Loop> loops_;
  std::vector<ArrayAccess> accesses_;
};

}  // namespace sasynth
