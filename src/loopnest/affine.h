// Affine expressions over loop iterators, and array access functions.
//
// This is the "polyhedral-lite" layer the analytical models are built on.
// CNN loop nests only need affine index expressions with non-negative
// coefficients (paper §3.3 observes exactly two patterns: a single iterator,
// and the sum of two iterators, e.g. r+p), but the representation here is a
// general linear form c0 + sum_l coeff_l * i_l so the reuse and footprint
// analyses work for any affine program the front end parses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sasynth {

/// Linear expression over the iterators of an enclosing loop nest.
/// Iterator `l` refers to position `l` in the nest's loop list.
class AffineExpr {
 public:
  AffineExpr() = default;

  /// Zero expression over `num_loops` iterators.
  explicit AffineExpr(std::size_t num_loops);

  /// Builds coeff * i_l (+ constant).
  static AffineExpr term(std::size_t num_loops, std::size_t loop,
                         std::int64_t coeff = 1, std::int64_t constant = 0);

  std::size_t num_loops() const { return coeffs_.size(); }
  std::int64_t coeff(std::size_t loop) const;
  std::int64_t constant() const { return constant_; }

  AffineExpr& set_coeff(std::size_t loop, std::int64_t value);
  AffineExpr& set_constant(std::int64_t value);
  AffineExpr& add_term(std::size_t loop, std::int64_t coeff);

  /// Evaluates at a concrete iteration point (size must equal num_loops()).
  std::int64_t eval(const std::vector<std::int64_t>& iters) const;

  /// True if the expression does not involve iterator `loop` (Eq. 3's
  /// invariance condition specialized to affine accesses).
  bool invariant_in(std::size_t loop) const;

  /// True if no iterator appears (pure constant).
  bool is_constant() const;

  AffineExpr operator+(const AffineExpr& other) const;

  /// Renders like "r + p" or "2*c + q + 1".
  std::string to_string(const std::vector<std::string>& iter_names) const;

  bool operator==(const AffineExpr& other) const;

 private:
  std::vector<std::int64_t> coeffs_;
  std::int64_t constant_ = 0;
};

/// A reference to a (multi-dimensional) array: one affine expression per
/// array dimension.
struct AccessFunction {
  std::string array;               ///< e.g. "IN"
  std::vector<AffineExpr> indices;  ///< one per array dimension

  std::size_t rank() const { return indices.size(); }

  /// Evaluates all dimensions at an iteration point.
  std::vector<std::int64_t> eval(const std::vector<std::int64_t>& iters) const;

  /// Invariance of the whole access in iterator `loop`: every dimension's
  /// expression must be invariant. This is exactly the condition of Eq. 3:
  /// F_r(..., i_l, ...) == F_r(..., i_l + 1, ...) for all points.
  bool invariant_in(std::size_t loop) const;

  /// "IN[i][r + p][c + q]" style rendering.
  std::string to_string(const std::vector<std::string>& iter_names) const;
};

}  // namespace sasynth
