#include "loopnest/affine.h"

#include <cassert>

namespace sasynth {

AffineExpr::AffineExpr(std::size_t num_loops) : coeffs_(num_loops, 0) {}

AffineExpr AffineExpr::term(std::size_t num_loops, std::size_t loop,
                            std::int64_t coeff, std::int64_t constant) {
  AffineExpr e(num_loops);
  e.set_coeff(loop, coeff);
  e.set_constant(constant);
  return e;
}

std::int64_t AffineExpr::coeff(std::size_t loop) const {
  assert(loop < coeffs_.size());
  return coeffs_[loop];
}

AffineExpr& AffineExpr::set_coeff(std::size_t loop, std::int64_t value) {
  assert(loop < coeffs_.size());
  coeffs_[loop] = value;
  return *this;
}

AffineExpr& AffineExpr::set_constant(std::int64_t value) {
  constant_ = value;
  return *this;
}

AffineExpr& AffineExpr::add_term(std::size_t loop, std::int64_t coeff) {
  assert(loop < coeffs_.size());
  coeffs_[loop] += coeff;
  return *this;
}

std::int64_t AffineExpr::eval(const std::vector<std::int64_t>& iters) const {
  assert(iters.size() == coeffs_.size());
  std::int64_t v = constant_;
  for (std::size_t l = 0; l < coeffs_.size(); ++l) v += coeffs_[l] * iters[l];
  return v;
}

bool AffineExpr::invariant_in(std::size_t loop) const {
  assert(loop < coeffs_.size());
  return coeffs_[loop] == 0;
}

bool AffineExpr::is_constant() const {
  for (const std::int64_t c : coeffs_) {
    if (c != 0) return false;
  }
  return true;
}

AffineExpr AffineExpr::operator+(const AffineExpr& other) const {
  assert(coeffs_.size() == other.coeffs_.size());
  AffineExpr out(coeffs_.size());
  for (std::size_t l = 0; l < coeffs_.size(); ++l) {
    out.coeffs_[l] = coeffs_[l] + other.coeffs_[l];
  }
  out.constant_ = constant_ + other.constant_;
  return out;
}

std::string AffineExpr::to_string(
    const std::vector<std::string>& iter_names) const {
  assert(iter_names.size() == coeffs_.size());
  std::string out;
  for (std::size_t l = 0; l < coeffs_.size(); ++l) {
    if (coeffs_[l] == 0) continue;
    if (!out.empty()) out += " + ";
    if (coeffs_[l] != 1) out += std::to_string(coeffs_[l]) + "*";
    out += iter_names[l];
  }
  if (constant_ != 0 || out.empty()) {
    if (!out.empty()) out += " + ";
    out += std::to_string(constant_);
  }
  return out;
}

bool AffineExpr::operator==(const AffineExpr& other) const {
  return coeffs_ == other.coeffs_ && constant_ == other.constant_;
}

std::vector<std::int64_t> AccessFunction::eval(
    const std::vector<std::int64_t>& iters) const {
  std::vector<std::int64_t> out;
  out.reserve(indices.size());
  for (const AffineExpr& e : indices) out.push_back(e.eval(iters));
  return out;
}

bool AccessFunction::invariant_in(std::size_t loop) const {
  for (const AffineExpr& e : indices) {
    if (!e.invariant_in(loop)) return false;
  }
  return true;
}

std::string AccessFunction::to_string(
    const std::vector<std::string>& iter_names) const {
  std::string out = array;
  for (const AffineExpr& e : indices) {
    out += "[" + e.to_string(iter_names) + "]";
  }
  return out;
}

}  // namespace sasynth
