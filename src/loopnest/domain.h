// Rectangular iteration domains and exact address-set counting.
//
// The paper counts data footprints (Eq. 5) with a polyhedral library in the
// general case but notes CNN access patterns admit a closed form. This module
// provides the *exact* enumeration — used to validate the closed form in
// tests and by the simulator's block scheduler — over rectangular domains
// (all CNN middle/inner loop blocks are rectangles).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "loopnest/affine.h"

namespace sasynth {

/// A rectangular domain: iterator l ranges over [0, extent_l).
class RectDomain {
 public:
  RectDomain() = default;
  explicit RectDomain(std::vector<std::int64_t> extents);

  std::size_t rank() const { return extents_.size(); }
  std::int64_t extent(std::size_t axis) const;
  const std::vector<std::int64_t>& extents() const { return extents_; }

  /// Number of points (product of extents).
  std::int64_t size() const;

  /// Calls `fn` for every point in lexicographic order.
  void for_each(const std::function<void(const std::vector<std::int64_t>&)>& fn)
      const;

 private:
  std::vector<std::int64_t> extents_;
};

/// |{ a | a = F(i), i in D }| computed by exact enumeration of the domain and
/// deduplication of the produced addresses. Exponential in domain size — use
/// only on small/block domains (tests, simulator setup).
std::int64_t exact_footprint(const AccessFunction& access,
                             const RectDomain& domain);

/// Closed-form footprint for CNN-style accesses: the address range of each
/// array dimension is computed independently and the footprint is the product
/// of the per-dimension range sizes (paper §3.3). Exact whenever each array
/// dimension's expression has non-negative coefficients and distinct array
/// dimensions use disjoint iterator sets — true for all CNN accesses.
std::int64_t closed_form_footprint(const AccessFunction& access,
                                   const RectDomain& domain);

/// Per-dimension address-range size used by the closed form:
/// for expr = c0 + sum coeff_l * i_l with i_l in [0, e_l):
/// range = sum coeff_l * (e_l - 1) + 1 (non-negative coefficients).
std::int64_t dim_range_size(const AffineExpr& expr, const RectDomain& domain);

}  // namespace sasynth
