// Loop tiling specification — the program form of paper Fig. 4.
//
// Every loop l of the nest (trip N_l) is split into three levels:
//   outer loop  : ceil(N_l / (s_l * t_l)) block iterations (off-chip blocking)
//   middle loop : s_l iterations (feeding the PE array from on-chip buffers)
//   inner loop  : t_l iterations (parallel hardware: PE row/col/SIMD vector)
// Unmapped loops have t_l = 1; loops kept entirely off-chip have s_l = 1.
// The bounds need not divide N_l; boundary blocks are padded (computation is
// wasted), which the DSP-efficiency model (Eq. 1) charges for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "loopnest/domain.h"
#include "loopnest/loop_nest.h"

namespace sasynth {

class TilingSpec {
 public:
  TilingSpec() = default;

  /// Identity tiling (all s = t = 1) for a nest with `num_loops` loops.
  explicit TilingSpec(std::size_t num_loops);

  /// Builds from explicit vectors (sizes must match and be >= 1).
  TilingSpec(std::vector<std::int64_t> middle, std::vector<std::int64_t> inner);

  std::size_t num_loops() const { return middle_.size(); }

  std::int64_t middle(std::size_t l) const;  ///< s_l
  std::int64_t inner(std::size_t l) const;   ///< t_l
  TilingSpec& set_middle(std::size_t l, std::int64_t s);
  TilingSpec& set_inner(std::size_t l, std::int64_t t);

  const std::vector<std::int64_t>& middle_bounds() const { return middle_; }
  const std::vector<std::int64_t>& inner_bounds() const { return inner_; }

  /// Block trip of loop l: b_l = s_l * t_l.
  std::int64_t block_trip(std::size_t l) const;

  /// All block trips.
  std::vector<std::int64_t> block_trips() const;

  /// Number of blocks along loop l for the given nest: ceil(N_l / b_l).
  std::int64_t outer_trip(const LoopNest& nest, std::size_t l) const;

  /// Total number of blocks (product over loops).
  std::int64_t num_blocks(const LoopNest& nest) const;

  /// Inner-granules along loop l: ceil(N_l / t_l). The sequential middle
  /// loops clip on boundary blocks (the feeders simply stop early), but the
  /// hardware array cannot clip below t_l, so granules are the unit of
  /// executed work.
  std::int64_t granules(const LoopNest& nest, std::size_t l) const;

  /// Total wavefronts across all blocks: prod_l granules_l. Each wavefront
  /// occupies the full PE array for one cycle in steady state.
  std::int64_t total_wavefronts(const LoopNest& nest) const;

  /// Executed (padded) iterations: prod_l granules_l * t_l — only the inner
  /// (array-shape) quantization wastes computation; middle loops clip.
  std::int64_t executed_iterations(const LoopNest& nest) const;

  /// DSP efficiency, Eq. 1 via the quantization interpretation:
  /// effective iterations / executed iterations. Depends only on the inner
  /// bounds t, which is what makes throughput monotone non-decreasing in s
  /// (the property §4's power-of-two pruning relies on).
  double efficiency(const LoopNest& nest) const;

  /// MACs executed per block: prod_l b_l.
  std::int64_t macs_per_block() const;

  /// Array-feeding cycles per block: prod_l s_l (the PE array consumes
  /// prod_l t_l MACs per cycle when fully pipelined).
  std::int64_t cycles_per_block() const;

  /// The block's iteration domain (extent b_l per loop) for footprint
  /// computations.
  RectDomain block_domain() const;

  /// Data footprint (elements) of one access over one block, Eq. 5 computed
  /// by the closed-form per-dimension range product.
  std::int64_t footprint_elems(const AccessFunction& access) const;

  /// Validates against a nest: size match, s/t >= 1, block <= padded trip.
  std::string validate(const LoopNest& nest) const;

  /// Structural validation only: size match and s/t >= 1, without the
  /// block-trip economy cap. A design folded onto a *smaller* layer than it
  /// was synthesized for legitimately has block trips far beyond the trip
  /// count (the hardware cannot shrink below t); the fold plan charges the
  /// waste instead of rejecting the configuration.
  std::string validate_structure(const LoopNest& nest) const;

  /// "s=(4,4,13,1,3,3) t=(11,13,1,1,1,8)" style rendering.
  std::string to_string() const;

  bool operator==(const TilingSpec& other) const;

 private:
  std::vector<std::int64_t> middle_;
  std::vector<std::int64_t> inner_;
};

}  // namespace sasynth
