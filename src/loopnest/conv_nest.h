// Builds the paper's Code 1 loop nest from a ConvLayerDesc.
//
// Loop order and naming follow Code 1:
//   L1 o (output maps), L2 i (input maps), L3 c (columns), L4 r (rows),
//   L5 p (kernel rows), L6 q (kernel cols)
// Statement: OUT[o][r][c] += W[o][i][p][q] * IN[i][stride*r+p][stride*c+q].
#pragma once

#include <cstddef>

#include "loopnest/loop_nest.h"
#include "nn/layer.h"

namespace sasynth {

/// Positions of the six convolution loops inside the nest built by
/// `build_conv_nest` (stable contract used across the framework).
struct ConvLoops {
  static constexpr std::size_t kO = 0;  ///< L1
  static constexpr std::size_t kI = 1;  ///< L2
  static constexpr std::size_t kC = 2;  ///< L3
  static constexpr std::size_t kR = 3;  ///< L4
  static constexpr std::size_t kP = 4;  ///< L5
  static constexpr std::size_t kQ = 5;  ///< L6
  static constexpr std::size_t kCount = 6;

  /// Short name for a loop position: "o", "i", "c", "r", "p", "q".
  static const char* name(std::size_t loop);
};

/// Canonical array names used by the conv nest.
inline constexpr const char* kOutArray = "OUT";
inline constexpr const char* kWeightArray = "W";
inline constexpr const char* kInArray = "IN";

/// Builds the six-loop nest for one group of `layer`.
LoopNest build_conv_nest(const ConvLayerDesc& layer);

}  // namespace sasynth
