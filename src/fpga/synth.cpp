#include "fpga/synth.h"

#include <cmath>

#include "util/strings.h"

namespace sasynth {

namespace {

// Soft-logic cost constants (calibrated against the paper's reported designs:
// AlexNet (11,14,8) fp32 -> 57% ALMs; VGG fixed -> 73% with 1500 lanes).
constexpr std::int64_t kLutsPerPeControl = 220;   // shift/valid control per PE
constexpr std::int64_t kFfsPerPeControl = 380;
constexpr std::int64_t kLutsPerBuffer = 900;      // IB/WB/OB addressing
constexpr std::int64_t kFfsPerBuffer = 1200;
constexpr std::int64_t kLutsShell = 60000;        // DDR/PCIe/OpenCL shell
constexpr std::int64_t kFfsShell = 90000;

}  // namespace

bool ResourceReport::fits() const {
  return dsp_util <= 1.0 && bram_util <= 1.0 && logic_util <= 1.0 &&
         ff_util <= 1.0;
}

std::string ResourceReport::summary() const {
  return strformat(
      "DSP %lld (%.0f%%), BRAM %lld (%.0f%%), LUT %lldK (%.0f%%), FF %lldK "
      "(%.0f%%)",
      static_cast<long long>(dsp_blocks), dsp_util * 100.0,
      static_cast<long long>(bram_blocks), bram_util * 100.0,
      static_cast<long long>(luts / 1000), logic_util * 100.0,
      static_cast<long long>(ffs / 1000), ff_util * 100.0);
}

double device_macs_per_dsp(const FpgaDevice& device, DataType dtype) {
  return dtype == DataType::kFloat32 ? device.macs_per_dsp_fp32
                                     : device.macs_per_dsp_fixed;
}

std::int64_t device_mac_capacity(const FpgaDevice& device, DataType dtype) {
  return static_cast<std::int64_t>(
      std::floor(static_cast<double>(device.dsp_blocks) *
                 device_macs_per_dsp(device, dtype)));
}

std::int64_t device_dsp_blocks_for_macs(const FpgaDevice& device,
                                        DataType dtype, std::int64_t macs) {
  return static_cast<std::int64_t>(
      std::ceil(static_cast<double>(macs) / device_macs_per_dsp(device, dtype)));
}

ResourceReport estimate_resources(const SynthInput& input,
                                  const FpgaDevice& device) {
  const DataTypeInfo& info = data_type_info(input.dtype);
  ResourceReport report;

  report.dsp_blocks =
      device_dsp_blocks_for_macs(device, input.dtype, input.num_lanes());
  report.bram_blocks = input.bram_blocks;

  // One IB per PE column, one WB per PE row, one OB per PE column.
  const std::int64_t num_buffers = 2 * input.pe_cols + input.pe_rows;
  report.luts = kLutsShell + input.num_lanes() * info.luts_per_lane +
                input.num_pes() * kLutsPerPeControl +
                num_buffers * kLutsPerBuffer;
  report.ffs = kFfsShell + input.num_lanes() * info.ffs_per_lane +
               input.num_pes() * kFfsPerPeControl + num_buffers * kFfsPerBuffer;

  report.dsp_util =
      static_cast<double>(report.dsp_blocks) / static_cast<double>(device.dsp_blocks);
  report.bram_util = static_cast<double>(report.bram_blocks) /
                     static_cast<double>(device.bram_blocks);
  report.logic_util =
      static_cast<double>(report.luts) / static_cast<double>(device.logic_cells);
  report.ff_util =
      static_cast<double>(report.ffs) / static_cast<double>(device.flipflops);
  return report;
}

}  // namespace sasynth
