// Numeric data types evaluated by the paper (§5.2): 32-bit floating point and
// a fixed-point mode with 8-bit weights and 16-bit pixels.
//
// The type determines the per-MAC DSP cost and the storage width of each
// array, which feed the resource model (Eqs. 4, 6) and the bandwidth model
// (Eqs. 9-10):
//   * Arria 10 hardened floating-point DSP blocks implement one fp32
//     multiply-accumulate per block.
//   * In fixed mode one DSP block provides two 18x19 multipliers, so one
//     block sustains two 8x16 MACs (the paper's fixed design instantiates
//     1500 MAC units at 49% DSP block usage on a 1518-block device).
#pragma once

#include <cstdint>
#include <string>

namespace sasynth {

enum class DataType {
  kFloat32,   ///< 32-bit IEEE float weights, pixels and accumulators
  kFixed8_16, ///< 8-bit weights, 16-bit pixels, 32-bit accumulators
};

struct DataTypeInfo {
  const char* name;
  int weight_bits;
  int pixel_bits;
  int accum_bits;
  /// MAC units implementable per DSP block.
  double macs_per_dsp_block;
  /// Relative soft-logic cost of one PE lane (LUTs), on top of the DSP.
  std::int64_t luts_per_lane;
  std::int64_t ffs_per_lane;

  double weight_bytes() const { return weight_bits / 8.0; }
  double pixel_bytes() const { return pixel_bits / 8.0; }
  double accum_bytes() const { return accum_bits / 8.0; }
};

const DataTypeInfo& data_type_info(DataType type);

/// "float32" / "fixed8_16".
std::string data_type_name(DataType type);

/// Parses the names above; returns false on unknown name.
bool parse_data_type(const std::string& name, DataType* out);

/// Number of DSP blocks needed for `macs` MAC units of this type.
std::int64_t dsp_blocks_for_macs(DataType type, std::int64_t macs);

/// Number of MAC units a device with `dsp_blocks` blocks can host.
std::int64_t mac_capacity(DataType type, std::int64_t dsp_blocks);

}  // namespace sasynth
