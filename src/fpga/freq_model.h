// Deterministic pseudo-P&R clock-frequency model.
//
// The paper's phase-2 DSE runs each top candidate through the Intel OpenCL
// SDK's place-and-route to obtain its true working frequency (§4, Fig. 5),
// observing that designs with identical estimated throughput differ in
// realized frequency in ways "hard to be predicted in advance". We replace
// the tool with a model that has exactly those properties:
//
//   F = fmax * derate(dsp_util) * derate(bram_util) * derate(logic_util)
//            * jitter(design_signature)
//
// The derates capture congestion-driven slowdown at high utilization; the
// jitter term (a hash of the design's textual signature, +-5%) reproduces the
// design-dependent scatter that makes phase 2 necessary. Everything is
// deterministic, so experiments are reproducible.
#pragma once

#include <cstdint>
#include <string>

#include "fpga/device.h"
#include "fpga/synth.h"

namespace sasynth {

struct FreqModelParams {
  double dsp_derate = 0.25;    ///< slope beyond the DSP knee
  double dsp_knee = 0.50;
  double bram_derate = 0.20;
  double bram_knee = 0.70;
  double logic_derate = 0.15;
  double logic_knee = 0.70;
  double jitter_span = 0.10;   ///< jitter multiplier in [1-span/2, 1+span/2]
};

/// Deterministic realized frequency (MHz) for a design whose resource report
/// is `report` and whose identity is `design_signature` (any stable textual
/// encoding of the design point; equal designs get equal frequencies).
double pseudo_pnr_frequency_mhz(const FpgaDevice& device,
                                const ResourceReport& report,
                                const std::string& design_signature,
                                const FreqModelParams& params = {});

/// The derate-only part (no jitter), exposed for tests and for plotting the
/// frequency/utilization trend.
double frequency_trend_mhz(const FpgaDevice& device,
                           const ResourceReport& report,
                           const FreqModelParams& params = {});

/// Clock model of a *direct-connected* (broadcast) PE array — the paper's
/// §1-2 motivation. Connecting every PE straight to the on-chip memories
/// creates (1) high-fan-out operand nets, (2) chip-spanning wires, and
/// (3) wide output-collection multiplexers, all of which grow with the PE
/// count, so the achievable clock collapses as the array scales:
///
///   F = fmax / (1 + k * num_pes^p)
///
/// calibrated so a few-hundred-PE broadcast design closes around 150-250 MHz
/// (the FPGA'15/16-era results in the paper's Table 3) and a thousand-PE one
/// falls near 100 MHz. The systolic model (frequency_trend_mhz) has no such
/// PE-count term — that difference is the paper's core argument.
double broadcast_frequency_mhz(const FpgaDevice& device, std::int64_t num_pes,
                               double fanout_coeff = 0.004,
                               double fanout_exp = 0.9);

}  // namespace sasynth
