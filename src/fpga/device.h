// FPGA device descriptions.
//
// The paper evaluates on Intel's Arria 10 GT 1150 (1518 hardened floating-
// point DSP blocks, 2713 M20K BRAM blocks, 427K ALMs, ~19 GB/s DDR). The
// comparison table also references other parts; their headline capacities are
// captured here so the comparison bench can report utilization percentages.
#pragma once

#include <cstdint>
#include <string>

namespace sasynth {

struct FpgaDevice {
  std::string name;

  std::int64_t dsp_blocks = 0;   ///< hardened DSP blocks
  std::int64_t bram_blocks = 0;  ///< on-chip RAM blocks (M20K / BRAM36 ...)
  std::int64_t bram_kbits = 20;  ///< capacity of one RAM block in Kbits
  std::int64_t logic_cells = 0;  ///< ALMs (Intel) or LUT-FF pairs (Xilinx)
  std::int64_t flipflops = 0;

  double bw_total_gbs = 0.0;  ///< aggregate off-chip bandwidth (GB/s)
  double bw_port_gbs = 0.0;   ///< per-memory-port bandwidth (GB/s)

  /// Peak clock a small systolic design closes timing at on this device; the
  /// pseudo-P&R model derates from here as utilization grows.
  double fmax_mhz = 0.0;

  /// BRAM model constants of Eq. 6: fixed cost per reuse buffer (c_b) and
  /// per-PE block cost (c_p, covers the output shift registers / MLAB spill).
  std::int64_t bram_const_per_buffer = 2;  ///< c_b
  double bram_per_pe = 0.25;               ///< c_p

  /// MAC units one DSP block sustains, per numeric mode. Arria 10's hardened
  /// floating-point DSPs do one fp32 MAC each and two 18x19 fixed MACs;
  /// Xilinx DSP48 slices have no hardened float (several slices + fabric per
  /// fp32 MAC) but one 16-bit MAC each.
  double macs_per_dsp_fp32 = 1.0;
  double macs_per_dsp_fixed = 2.0;

  /// Bytes of one RAM block.
  std::int64_t bram_bytes() const { return bram_kbits * 1024 / 8; }

  std::string summary() const;
};

/// The paper's evaluation device: Arria 10 GT 1150.
FpgaDevice arria10_gt1150();

/// Arria 10 GX 1150 (used by [11], [17], [26] in the comparison table).
FpgaDevice arria10_gx1150();

/// Xilinx Kintex UltraScale KU060 (Caffeine [10]).
FpgaDevice xilinx_ku060();

/// Xilinx Virtex-7 VC709 (Caffeine [10]).
FpgaDevice xilinx_vc709();

/// Altera Stratix-V GSD8 ([9]).
FpgaDevice stratix_v();

/// A deliberately small device for tests (fast DSE, tight constraints).
FpgaDevice tiny_test_device();

/// Looks a device up by CLI/protocol name: "arria10_gt1150" (alias "gt1150"),
/// "arria10_gx1150" ("gx1150"), "ku060", "vc709", "stratixv", "tiny".
/// Case-insensitive; returns false on unknown names.
bool parse_device_name(const std::string& name, FpgaDevice* out);

/// The accepted names above, for usage/help text.
const char* device_name_list();

/// The inverse of parse_device_name: the canonical protocol token for a
/// known device ("arria10_gt1150", ...), keyed on the display name. Returns
/// "" for a device outside the named catalog — callers that serialize a
/// device line must treat that as unserializable, not emit the display name
/// (which the parser would reject).
const char* device_flag_name(const FpgaDevice& device);

}  // namespace sasynth
