#include "fpga/freq_model.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace sasynth {

namespace {

double derate(double util, double knee, double slope) {
  const double excess = std::max(0.0, util - knee);
  return std::max(0.25, 1.0 - slope * excess / (1.0 - knee));
}

}  // namespace

double frequency_trend_mhz(const FpgaDevice& device,
                           const ResourceReport& report,
                           const FreqModelParams& params) {
  double f = device.fmax_mhz;
  f *= derate(report.dsp_util, params.dsp_knee, params.dsp_derate);
  f *= derate(report.bram_util, params.bram_knee, params.bram_derate);
  f *= derate(report.logic_util, params.logic_knee, params.logic_derate);
  return f;
}

double broadcast_frequency_mhz(const FpgaDevice& device, std::int64_t num_pes,
                               double fanout_coeff, double fanout_exp) {
  const double penalty =
      fanout_coeff * std::pow(static_cast<double>(num_pes), fanout_exp);
  return device.fmax_mhz / (1.0 + penalty);
}

double pseudo_pnr_frequency_mhz(const FpgaDevice& device,
                                const ResourceReport& report,
                                const std::string& design_signature,
                                const FreqModelParams& params) {
  const double trend = frequency_trend_mhz(device, report, params);
  const std::uint64_t h = splitmix64(fnv1a64(design_signature));
  const double unit =
      static_cast<double>(h >> 11) / 9007199254740992.0;  // [0, 1)
  const double jitter = 1.0 + params.jitter_span * (unit - 0.5);
  return trend * jitter;
}

}  // namespace sasynth
