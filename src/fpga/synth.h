// Post-synthesis resource report — the substitute for the Intel OpenCL SDK's
// area results.
//
// The DSE needs LUT/FF/DSP/BRAM totals for a candidate design. DSP and BRAM
// come from the paper's analytical model (computed in core/); the soft-logic
// estimate here uses calibrated per-PE and per-buffer costs so the reported
// logic utilizations land in the range the paper reports for its designs
// (57-83% on Arria 10).
#pragma once

#include <cstdint>
#include <string>

#include "fpga/datatype.h"
#include "fpga/device.h"

namespace sasynth {

/// Raw design quantities the synthesis estimate is computed from.
struct SynthInput {
  std::int64_t pe_rows = 0;
  std::int64_t pe_cols = 0;
  std::int64_t simd_vec = 0;
  std::int64_t bram_blocks = 0;  ///< from the Eq. 6 model
  DataType dtype = DataType::kFloat32;

  std::int64_t num_pes() const { return pe_rows * pe_cols; }
  std::int64_t num_lanes() const { return num_pes() * simd_vec; }
};

struct ResourceReport {
  std::int64_t dsp_blocks = 0;
  std::int64_t bram_blocks = 0;
  std::int64_t luts = 0;
  std::int64_t ffs = 0;

  double dsp_util = 0.0;
  double bram_util = 0.0;
  double logic_util = 0.0;
  double ff_util = 0.0;

  /// True if every resource fits the device.
  bool fits() const;

  std::string summary() const;
};

/// Estimates the full report for a design on a device.
ResourceReport estimate_resources(const SynthInput& input,
                                  const FpgaDevice& device);

/// Device-aware MAC/DSP accounting (the device's per-block MAC yield differs
/// between Intel hardened-FP DSPs and Xilinx DSP48 slices).
double device_macs_per_dsp(const FpgaDevice& device, DataType dtype);
std::int64_t device_mac_capacity(const FpgaDevice& device, DataType dtype);
std::int64_t device_dsp_blocks_for_macs(const FpgaDevice& device,
                                        DataType dtype, std::int64_t macs);

}  // namespace sasynth
