#include "fpga/datatype.h"

#include <cassert>
#include <cmath>

#include "util/math_util.h"

namespace sasynth {

namespace {

constexpr DataTypeInfo kFloat32Info{
    /*name=*/"float32",
    /*weight_bits=*/32,
    /*pixel_bits=*/32,
    /*accum_bits=*/32,
    /*macs_per_dsp_block=*/1.0,
    /*luts_per_lane=*/120,
    /*ffs_per_lane=*/180,
};

constexpr DataTypeInfo kFixed816Info{
    /*name=*/"fixed8_16",
    /*weight_bits=*/8,
    /*pixel_bits=*/16,
    /*accum_bits=*/32,
    /*macs_per_dsp_block=*/2.0,
    /*luts_per_lane=*/60,
    /*ffs_per_lane=*/110,
};

}  // namespace

const DataTypeInfo& data_type_info(DataType type) {
  switch (type) {
    case DataType::kFloat32:
      return kFloat32Info;
    case DataType::kFixed8_16:
      return kFixed816Info;
  }
  assert(false);
  return kFloat32Info;
}

std::string data_type_name(DataType type) { return data_type_info(type).name; }

bool parse_data_type(const std::string& name, DataType* out) {
  if (name == "float32" || name == "float" || name == "fp32") {
    *out = DataType::kFloat32;
    return true;
  }
  if (name == "fixed8_16" || name == "fixed" || name == "int8_16") {
    *out = DataType::kFixed8_16;
    return true;
  }
  return false;
}

std::int64_t dsp_blocks_for_macs(DataType type, std::int64_t macs) {
  const double per_block = data_type_info(type).macs_per_dsp_block;
  return static_cast<std::int64_t>(
      std::ceil(static_cast<double>(macs) / per_block));
}

std::int64_t mac_capacity(DataType type, std::int64_t dsp_blocks) {
  const double per_block = data_type_info(type).macs_per_dsp_block;
  return static_cast<std::int64_t>(
      std::floor(static_cast<double>(dsp_blocks) * per_block));
}

}  // namespace sasynth
