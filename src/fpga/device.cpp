#include "fpga/device.h"

#include "util/strings.h"

namespace sasynth {

std::string FpgaDevice::summary() const {
  return strformat(
      "%s: %lld DSP, %lld BRAM(%lldKb), %lldK logic, BW %.1f GB/s (port %.1f), "
      "fmax %.0f MHz",
      name.c_str(), static_cast<long long>(dsp_blocks),
      static_cast<long long>(bram_blocks), static_cast<long long>(bram_kbits),
      static_cast<long long>(logic_cells / 1000), bw_total_gbs, bw_port_gbs,
      fmax_mhz);
}

FpgaDevice arria10_gt1150() {
  FpgaDevice d;
  d.name = "Arria10 GT1150";
  d.dsp_blocks = 1518;
  d.bram_blocks = 2713;
  d.bram_kbits = 20;
  d.logic_cells = 427200;
  d.flipflops = 1708800;
  d.bw_total_gbs = 19.2;  // DDR4 on the dev kit, paper quotes 19 GB/s
  d.bw_port_gbs = 12.8;
  d.fmax_mhz = 312.0;
  return d;
}

FpgaDevice arria10_gx1150() {
  FpgaDevice d = arria10_gt1150();
  d.name = "Arria10 GX1150";
  return d;
}

FpgaDevice xilinx_ku060() {
  FpgaDevice d;
  d.name = "Xilinx KU060";
  d.macs_per_dsp_fp32 = 0.4;   // ~2.5 DSP48E2 + fabric per fp32 MAC
  d.macs_per_dsp_fixed = 1.0;  // one 16-bit MAC per slice
  d.dsp_blocks = 2760;
  d.bram_blocks = 2160;  // 1080 BRAM36 counted as 18Kb halves
  d.bram_kbits = 18;
  d.logic_cells = 331680;
  d.flipflops = 663360;
  d.bw_total_gbs = 19.2;
  d.bw_port_gbs = 12.8;
  d.fmax_mhz = 250.0;
  return d;
}

FpgaDevice xilinx_vc709() {
  FpgaDevice d;
  d.name = "Xilinx VC709";
  d.macs_per_dsp_fp32 = 0.4;
  d.macs_per_dsp_fixed = 1.0;
  d.dsp_blocks = 3600;
  d.bram_blocks = 2940;
  d.bram_kbits = 18;
  d.logic_cells = 433200;
  d.flipflops = 866400;
  d.bw_total_gbs = 21.3;
  d.bw_port_gbs = 12.8;
  d.fmax_mhz = 220.0;
  return d;
}

FpgaDevice stratix_v() {
  FpgaDevice d;
  d.name = "Stratix-V GSD8";
  d.macs_per_dsp_fp32 = 0.5;   // no hardened float on Stratix V
  d.macs_per_dsp_fixed = 2.0;
  d.dsp_blocks = 1963;
  d.bram_blocks = 2567;
  d.bram_kbits = 20;
  d.logic_cells = 262400;
  d.flipflops = 1049600;
  d.bw_total_gbs = 12.8;
  d.bw_port_gbs = 12.8;
  d.fmax_mhz = 200.0;
  return d;
}

FpgaDevice tiny_test_device() {
  FpgaDevice d;
  d.name = "TinyTestDevice";
  d.dsp_blocks = 64;
  d.bram_blocks = 128;
  d.bram_kbits = 20;
  d.logic_cells = 150000;   // must at least fit the I/O shell
  d.flipflops = 300000;
  d.bw_total_gbs = 4.0;
  d.bw_port_gbs = 2.0;
  d.fmax_mhz = 300.0;
  return d;
}

bool parse_device_name(const std::string& name, FpgaDevice* out) {
  const std::string lower = to_lower(name);
  if (lower == "arria10_gt1150" || lower == "gt1150") {
    *out = arria10_gt1150();
  } else if (lower == "arria10_gx1150" || lower == "gx1150") {
    *out = arria10_gx1150();
  } else if (lower == "ku060") {
    *out = xilinx_ku060();
  } else if (lower == "vc709") {
    *out = xilinx_vc709();
  } else if (lower == "stratixv") {
    *out = stratix_v();
  } else if (lower == "tiny") {
    *out = tiny_test_device();
  } else {
    return false;
  }
  return true;
}

const char* device_name_list() {
  return "arria10_gt1150|arria10_gx1150|ku060|vc709|stratixv|tiny";
}

const char* device_flag_name(const FpgaDevice& device) {
  if (device.name == arria10_gt1150().name) return "arria10_gt1150";
  if (device.name == arria10_gx1150().name) return "arria10_gx1150";
  if (device.name == xilinx_ku060().name) return "ku060";
  if (device.name == xilinx_vc709().name) return "vc709";
  if (device.name == stratix_v().name) return "stratixv";
  if (device.name == tiny_test_device().name) return "tiny";
  return "";
}

}  // namespace sasynth
