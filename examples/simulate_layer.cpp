// Cycle-accurate systolic simulation demo: pick a small layer, map it three
// different ways, watch the wavefront, and verify every variant against the
// reference convolution.
#include <cstdio>

#include "core/mapping.h"
#include "core/perf_model.h"
#include "loopnest/conv_nest.h"
#include "loopnest/reuse.h"
#include "nn/reference.h"
#include "sim/perf_sim.h"
#include "sim/systolic_array.h"
#include "util/rng.h"

int main() {
  using namespace sasynth;

  const ConvLayerDesc layer = make_conv("demo", 8, 6, 6, 3);
  const LoopNest nest = build_conv_nest(layer);
  std::printf("layer: %s\n\nloop nest (Code 1):\n%s\n", layer.summary().c_str(),
              nest.to_string().c_str());

  const ReuseMatrix reuse = analyze_reuse(nest);
  std::printf("fine-grained reuse matrix (c_rl, Eq. 3):\n%s\n",
              reuse_report(nest, reuse).c_str());

  const std::vector<SystolicMapping> mappings =
      enumerate_feasible_mappings(nest, reuse);
  std::printf("%zu feasible mappings (of %lld ordered loop triples)\n\n",
              mappings.size(),
              static_cast<long long>(num_candidate_mappings(nest)));

  Rng rng(7);
  const ConvData data = make_random_conv_data(layer, rng);
  const Tensor ref = reference_conv(layer, data);

  int shown = 0;
  for (const SystolicMapping& mapping : mappings) {
    if (shown++ == 3) break;
    const DesignPoint design(nest, mapping, ArrayShape{3, 2, 4},
                             {2, 1, 3, 2, 3, 3});
    SimOptions options;
    options.record_first_block_activity = shown == 1;
    const SimResult result =
        simulate_systolic(nest, design, layer, data, options);
    const float err = Tensor::max_abs_diff(result.output, ref);
    std::printf("mapping %-22s : %s\n",
                mapping.to_string(nest).c_str(), result.summary().c_str());
    std::printf("  vs reference: max|err| = %.2g  [%s]\n",
                static_cast<double>(err), err < 1e-3F ? "PASS" : "FAIL");
    std::printf("  analytical eff (Eq. 1) = %.2f%%, measured = %.2f%%\n",
                dsp_efficiency(nest, design) * 100.0,
                result.measured_efficiency() * 100.0);
    if (options.record_first_block_activity) {
      std::printf("  wavefront ramp (active PEs per cycle): ");
      for (std::size_t t = 0;
           t < result.first_block_active_pes.size() && t < 10; ++t) {
        std::printf("%lld ",
                    static_cast<long long>(result.first_block_active_pes[t]));
      }
      std::printf("...\n");
    }
    std::printf("\n");
  }

  // The same design through the block-pipeline performance simulator.
  const DesignPoint design(nest, mappings.front(), ArrayShape{3, 2, 4},
                           {2, 1, 3, 2, 3, 3});
  PerfSimOptions perf_options;
  perf_options.freq_mhz = 250.0;
  const PerfSimResult perf = simulate_performance(
      nest, design, tiny_test_device(), DataType::kFloat32, perf_options);
  std::printf("block-pipeline run @250 MHz on the tiny device: %s\n",
              perf.summary().c_str());
  return 0;
}
