// Systolic matrix multiplication — the classic application (paper §1 cites
// Kung's original arrays and the FPGA matmul kernel of [15]) — through the
// same generic machinery: build the three-loop nest, enumerate its feasible
// mappings, explore the design space, and run the cycle-accurate array.
//
// Demonstrates that the framework is not hard-wired to convolution: the
// reuse analysis, the models, the DSE and the simulator all operate on the
// loop-nest IR.
#include <cstdio>

#include "core/dse.h"
#include "core/mapping.h"
#include "loopnest/reuse.h"
#include "sim/systolic_array.h"
#include "util/rng.h"

namespace {

using namespace sasynth;

/// C[i][j] += A[i][k] * B[k][j].
LoopNest build_matmul_nest(std::int64_t m, std::int64_t n, std::int64_t k) {
  LoopNest nest;
  nest.add_loop("i", m);
  nest.add_loop("j", n);
  nest.add_loop("k", k);
  AccessFunction c;
  c.array = "Cm";
  c.indices.push_back(AffineExpr::term(3, 0));
  c.indices.push_back(AffineExpr::term(3, 1));
  nest.add_access(ArrayAccess{c, AccessRole::kReduce});
  AccessFunction a;
  a.array = "A";
  a.indices.push_back(AffineExpr::term(3, 0));
  a.indices.push_back(AffineExpr::term(3, 2));
  nest.add_access(ArrayAccess{a, AccessRole::kRead});
  AccessFunction b;
  b.array = "B";
  b.indices.push_back(AffineExpr::term(3, 2));
  b.indices.push_back(AffineExpr::term(3, 1));
  nest.add_access(ArrayAccess{b, AccessRole::kRead});
  return nest;
}

}  // namespace

int main() {
  const std::int64_t M = 24;
  const std::int64_t N = 16;
  const std::int64_t K = 32;
  const LoopNest nest = build_matmul_nest(M, N, K);
  std::printf("matrix multiply C[%lld][%lld] += A[.][%lld] * B[.][.]\n\n",
              static_cast<long long>(M), static_cast<long long>(N),
              static_cast<long long>(K));
  std::printf("loop nest:\n%s\n", nest.to_string().c_str());

  const ReuseMatrix reuse = analyze_reuse(nest);
  std::printf("reuse matrix:\n%s\n", reuse_report(nest, reuse).c_str());
  const std::vector<SystolicMapping> mappings =
      enumerate_feasible_mappings(nest, reuse);
  std::printf("%zu feasible mappings:\n", mappings.size());
  for (const SystolicMapping& mapping : mappings) {
    std::printf("  %s\n", mapping.to_string(nest).c_str());
  }

  // DSE on the tiny device.
  DseOptions options;
  options.min_dsp_util = 0.5;
  options.max_rows = 8;
  options.max_cols = 8;
  options.max_vec = 8;
  const DesignSpaceExplorer explorer(tiny_test_device(), DataType::kFloat32,
                                     options);
  const DseResult result = explorer.explore(nest);
  if (result.empty()) {
    std::printf("no valid design\n");
    return 1;
  }
  const DesignPoint& design = result.best()->design;
  std::printf("\nchosen design: %s -> %.1f Gops @ %.1f MHz\n",
              design.to_string(nest).c_str(), result.best()->realized_gops(),
              result.best()->realized_freq_mhz);

  // Run it on the cycle-accurate array and verify against a plain matmul.
  Rng rng(99);
  Tensor a({M, K});
  Tensor b({K, N});
  a.fill_random(rng);
  b.fill_random(rng);
  Tensor c({M, N});
  std::vector<const Tensor*> operands{nullptr, &a, &b};
  const SimResult sim = simulate_systolic_nest(nest, design, operands, &c);

  Tensor ref({M, N});
  for (std::int64_t i = 0; i < M; ++i) {
    for (std::int64_t j = 0; j < N; ++j) {
      float acc = 0.0F;
      for (std::int64_t kk = 0; kk < K; ++kk) acc += a.at(i, kk) * b.at(kk, j);
      ref.at(i, j) = acc;
    }
  }
  const float err = Tensor::max_abs_diff(sim.output, ref);
  std::printf("systolic run: %s\n", sim.summary().c_str());
  std::printf("vs reference matmul: max|err| = %.2g  [%s]\n",
              static_cast<double>(err), err < 1e-3F ? "PASS" : "FAIL");
  return err < 1e-3F ? 0 : 1;
}
