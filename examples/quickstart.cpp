// Quickstart: explore the systolic design space for one convolutional layer
// and print the best design — the 60-second tour of the library.
//
// Reproduces the paper's running example: AlexNet conv5,
// (I,O,R,C,P,Q) = (192,128,13,13,3,3) on an Arria 10 GT1150 in fp32.
#include <cstdio>

#include "core/dse.h"
#include "fpga/device.h"
#include "loopnest/conv_nest.h"
#include "nn/network.h"

int main() {
  using namespace sasynth;

  // 1. Describe the workload: one conv layer (the paper's §2.3 example).
  const ConvLayerDesc layer = alexnet_conv5();
  std::printf("Layer:  %s\n", layer.summary().c_str());

  // 2. Pick a device and numeric type.
  const FpgaDevice device = arria10_gt1150();
  std::printf("Device: %s\n\n", device.summary().c_str());

  // 3. Run the two-phase design space exploration.
  DseOptions options;
  options.assumed_freq_mhz = 280.0;  // phase-1 clock assumption
  options.min_dsp_util = 0.70;       // Eq. 12 pruning constant c_s
  options.top_k = 14;                // candidates carried into pseudo-P&R
  const DesignSpaceExplorer explorer(device, DataType::kFloat32, options);
  const DseResult result = explorer.explore_layer(layer);

  std::printf("DSE:    %s\n\n", result.stats.summary().c_str());

  // 4. Inspect the winners.
  const LoopNest nest = build_conv_nest(layer);
  std::printf("%-4s %-22s %-12s %10s %9s %10s %14s\n", "#", "mapping", "shape",
              "est Gops", "eff", "P&R MHz", "realized Gops");
  for (std::size_t i = 0; i < result.top.size(); ++i) {
    const DseCandidate& c = result.top[i];
    std::printf("%-4zu %-22s %-12s %10.1f %8.2f%% %10.1f %14.1f\n", i + 1,
                c.design.mapping().to_string(nest).c_str(),
                c.design.shape().to_string().c_str(), c.estimated_gops(),
                c.estimate.eff * 100.0, c.realized_freq_mhz,
                c.realized_gops());
  }

  const DseCandidate* best = result.best();
  if (best == nullptr) {
    std::printf("\nNo valid design found.\n");
    return 1;
  }
  std::printf("\nBest design: %s\n", best->design.to_string(nest).c_str());
  std::printf("  %s\n", best->realized.summary().c_str());
  std::printf("  %s\n", best->resources.report.summary().c_str());
  return 0;
}
