// End-to-end push-button flow (paper Fig. 6) on AlexNet conv5:
// annotated C source in, OpenCL kernel + host program + design report out.
//
// Artifacts are written to ./alexnet_flow_out/.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "frontend/flow.h"
#include "nn/network.h"

namespace {

bool write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main() {
  using namespace sasynth;

  // The user-visible input: the annotated Code 1 loop nest.
  const std::string source = render_conv_source(alexnet_conv5());
  std::printf("--- input program ---\n%s\n", source.c_str());

  FlowOptions options;
  options.device = arria10_gt1150();
  options.dtype = DataType::kFloat32;
  options.dse.assumed_freq_mhz = 280.0;
  options.dse.min_dsp_util = 0.75;
  options.require_pragma = true;

  const FlowResult result = run_automation_flow(source, options);
  if (!result.ok) {
    std::printf("flow failed: %s\n", result.error.c_str());
    return 1;
  }

  const LoopNest& nest = result.parse.nest;
  std::printf("--- chosen design ---\n%s\n",
              result.best.design.to_string(nest).c_str());
  std::printf("estimated %.1f Gops @280 MHz; realized %.1f Gops @ %.1f MHz\n",
              result.best.estimated_gops(), result.best.realized_gops(),
              result.best.realized_freq_mhz);
  std::printf("%s\n\n", result.best.resources.report.summary().c_str());

  const std::filesystem::path out_dir = "alexnet_flow_out";
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  bool ok = true;
  ok &= write_file(out_dir / "params.h", result.kernel.params_h);
  ok &= write_file(out_dir / "systolic_conv.cl", result.kernel.kernel_cl);
  ok &= write_file(out_dir / "addressing.h", result.kernel.addressing_h);
  ok &= write_file(out_dir / "host.c", result.host_program);
  ok &= write_file(out_dir / "report.md", result.report);
  if (!ok) {
    std::printf("failed to write artifacts to %s\n", out_dir.string().c_str());
    return 1;
  }
  std::printf("artifacts written to %s/: params.h, addressing.h, "
              "systolic_conv.cl, host.c, report.md\n",
              out_dir.string().c_str());
  std::printf("\n--- report preview ---\n%.1200s...\n", result.report.c_str());
  return 0;
}
