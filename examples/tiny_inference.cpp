// End-to-end CNN inference through the cycle-accurate systolic array:
// conv -> ReLU -> max-pool -> conv -> ReLU -> FC(-as-conv) -> softmax.
//
// Every convolution (including the FC tail converted per §2.1) executes on
// the simulated hardware under a DSE-chosen design; host-side operators
// (ReLU, pooling, softmax) run between layers. The whole pipeline is
// verified against a pure software reference.
#include <cstdio>

#include "core/dse.h"
#include "loopnest/conv_nest.h"
#include "nn/fc.h"
#include "nn/postops.h"
#include "nn/reference.h"
#include "sim/systolic_array.h"
#include "util/rng.h"

namespace {

using namespace sasynth;

/// Runs one conv layer on the simulated systolic array with a DSE-selected
/// design; falls back never — a failed DSE is a hard error for the demo.
Tensor conv_on_array(const ConvLayerDesc& layer, const ConvData& data,
                     bool* ok) {
  const LoopNest nest = build_conv_nest(layer);
  DseOptions options;
  options.min_dsp_util = 0.5;
  options.max_rows = 8;
  options.max_cols = 8;
  options.max_vec = 8;
  const DesignSpaceExplorer explorer(tiny_test_device(), DataType::kFloat32,
                                     options);
  const DseResult result = explorer.explore(nest);
  if (result.empty()) {
    *ok = false;
    return Tensor();
  }
  const DesignPoint& design = result.best()->design;
  const SimResult sim = simulate_systolic(nest, design, layer, data);
  std::printf("  %-16s on array %s: %s\n", layer.name.c_str(),
              design.shape().to_string().c_str(), sim.summary().c_str());
  *ok = true;
  return sim.output;
}

/// Copies a [C][H][W] activation into the padded input tensor of `layer`
/// (zero padding on the bottom/right as needed).
Tensor pad_input(const ConvLayerDesc& layer, const Tensor& activation) {
  Tensor input({layer.in_maps, layer.in_rows(), layer.in_cols()});
  for (std::int64_t c = 0; c < activation.dim(0); ++c) {
    for (std::int64_t h = 0; h < activation.dim(1); ++h) {
      for (std::int64_t w = 0; w < activation.dim(2); ++w) {
        input.at(c, h, w) = activation.at(c, h, w);
      }
    }
  }
  return input;
}

}  // namespace

int main() {
  Rng rng(2718);

  // Network: 3x10x10 image -> conv1 (3->8, 8x8 out) -> ReLU -> 2x2 pool ->
  // conv2 (8->8, 2x2 out) -> ReLU -> FC 32->6 (as conv) -> softmax.
  const ConvLayerDesc conv1 = make_conv("conv1", 3, 8, 8, 3);
  const ConvLayerDesc conv2 = make_conv("conv2", 8, 8, 2, 3);
  const FcLayerDesc fc{"fc", 8 * 2 * 2, 6};
  const ConvLayerDesc fc_conv = fc_as_conv(fc, 8, 2);

  // Weights and input image (deterministic random).
  ConvData d1 = make_random_conv_data(conv1, rng, -0.5F, 0.5F);
  Tensor w2({conv2.out_maps, conv2.in_maps, 3, 3});
  w2.fill_random(rng, -0.5F, 0.5F);
  Tensor fc_w({fc.out_features, fc.in_features});
  fc_w.fill_random(rng, -0.5F, 0.5F);

  std::printf("running tiny CNN on the simulated systolic array:\n");
  bool ok = true;

  // conv1 + ReLU + pool.
  const Tensor a1 = conv_on_array(conv1, d1, &ok);
  if (!ok) return 1;
  const Tensor p1 = max_pool(relu(a1), 2, 2);  // 8 x 4 x 4

  // conv2 + ReLU.
  ConvData d2;
  d2.input = pad_input(conv2, p1);
  d2.weights = w2;
  const Tensor a2 = conv_on_array(conv2, d2, &ok);
  if (!ok) return 1;
  const Tensor r2 = relu(a2);  // 8 x 2 x 2

  // FC tail as a convolution (§2.1).
  ConvData d3;
  d3.input = pad_input(fc_conv, r2);
  d3.weights = fc_weights_as_conv(fc, fc_w, 8, 2);
  const Tensor logits3d = conv_on_array(fc_conv, d3, &ok);
  if (!ok) return 1;
  const Tensor probs = softmax(flatten(logits3d));

  // Pure software reference for the whole pipeline.
  const Tensor ref1 = max_pool(relu(reference_conv(conv1, d1)), 2, 2);
  ConvData rd2;
  rd2.input = pad_input(conv2, ref1);
  rd2.weights = w2;
  const Tensor ref2 = relu(reference_conv(conv2, rd2));
  const Tensor ref_logits = fc_forward(fc, flatten(ref2), fc_w);
  const Tensor ref_probs = softmax(ref_logits);

  const float err = Tensor::max_abs_diff(probs, ref_probs);
  std::printf("\nclass probabilities (array | reference):\n");
  for (std::int64_t i = 0; i < probs.size(); ++i) {
    std::printf("  class %lld: %.4f | %.4f\n", static_cast<long long>(i),
                probs.at(i), ref_probs.at(i));
  }
  std::printf("\npredicted class: %lld (reference %lld), max|dp| = %.2g  [%s]\n",
              static_cast<long long>(argmax(probs)),
              static_cast<long long>(argmax(ref_probs)),
              static_cast<double>(err), err < 1e-4F ? "PASS" : "FAIL");
  return err < 1e-4F ? 0 : 1;
}
