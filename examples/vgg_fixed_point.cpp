// VGG16 in the paper's fixed-point mode (8-bit weights, 16-bit pixels):
// select a unified design, report per-layer throughput, and demonstrate the
// quantized datapath's numeric accuracy on a sample layer.
#include <cstdio>

#include "core/unified.h"
#include "nn/network.h"
#include "nn/quantize.h"
#include "util/rng.h"

int main() {
  using namespace sasynth;

  const Network net = make_vgg16();
  std::printf("%s\n", net.summary().c_str());

  UnifiedOptions options;
  options.dse.min_dsp_util = 0.70;
  options.shape_shortlist = 32;
  const UnifiedDesign fixed = select_unified_design(
      net, arria10_gt1150(), DataType::kFixed8_16, options);
  if (!fixed.valid) {
    std::printf("no valid fixed-point design found\n");
    return 1;
  }
  std::printf("%s\n", fixed.summary(net).c_str());

  const UnifiedDesign fp = select_unified_design(
      net, arria10_gt1150(), DataType::kFloat32, options);
  if (fp.valid) {
    std::printf("float32 baseline: %.1f Gops, %.2f ms/image -> fixed-point "
                "speedup %.2fx\n\n",
                fp.aggregate_gops, fp.total_latency_ms,
                fixed.aggregate_gops / fp.aggregate_gops);
  }

  // Numeric accuracy of the 8/16-bit datapath on a (scaled-down) VGG layer.
  const ConvLayerDesc sample = make_conv("vgg_sample", 64, 32, 14, 3);
  Rng rng(2024);
  const ConvData data = make_random_conv_data(sample, rng);
  const Tensor ref = reference_conv(sample, data);
  const Tensor fx = fixed_point_conv(sample, data, /*weight_bits=*/8,
                                     /*pixel_bits=*/16);
  const QuantErrorReport report = compare_quantized(ref, fx);
  std::printf("fixed-point datapath accuracy on %s:\n  %s\n",
              sample.summary().c_str(), report.summary().c_str());
  std::printf("(the paper quotes <2%% top-1/top-5 ImageNet degradation for "
              "this precision; the raw datapath error above is the numeric "
              "component of that budget)\n");
  return 0;
}
